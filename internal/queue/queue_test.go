package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hp"
	"repro/internal/reclaim"
	"repro/internal/urcu"
)

func factories() map[string]DomainFactory {
	return map[string]DomainFactory{
		"HE":   func(a reclaim.Allocator, c reclaim.Config) reclaim.Domain { return core.New(a, c) },
		"HP":   func(a reclaim.Allocator, c reclaim.Config) reclaim.Domain { return hp.New(a, c) },
		"EBR":  func(a reclaim.Allocator, c reclaim.Config) reclaim.Domain { return ebr.New(a, c) },
		"URCU": func(a reclaim.Allocator, c reclaim.Config) reclaim.Domain { return urcu.New(a, c) },
	}
}

func heQueue(t *testing.T) *Queue {
	t.Helper()
	return New(factories()["HE"], WithChecked(true), WithMaxThreads(16))
}

func TestEmptyDequeue(t *testing.T) {
	q := heQueue(t)
	h := q.Register()
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("dequeue from empty queue succeeded")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestFIFOOrder(t *testing.T) {
	q := heQueue(t)
	h := q.Register()
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(h, i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("queue should be empty")
	}
}

func TestDequeueRetiresDummies(t *testing.T) {
	q := heQueue(t)
	h := q.Register()
	for i := uint64(0); i < 50; i++ {
		q.Enqueue(h, i)
		q.Dequeue(h)
	}
	s := q.Domain().Stats()
	if s.Retired != 50 {
		t.Fatalf("Retired = %d, want 50", s.Retired)
	}
	// Single-threaded: everything retired must have been freed.
	if s.Pending > 1 {
		t.Fatalf("Pending = %d", s.Pending)
	}
	if f := q.Arena().Stats().Faults; f != 0 {
		t.Fatalf("faults: %d", f)
	}
}

func TestInterleavedEnqueueDequeue(t *testing.T) {
	q := heQueue(t)
	h := q.Register()
	q.Enqueue(h, 1)
	q.Enqueue(h, 2)
	if v, _ := q.Dequeue(h); v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
	q.Enqueue(h, 3)
	if v, _ := q.Dequeue(h); v != 2 {
		t.Fatalf("got %d, want 2", v)
	}
	if v, _ := q.Dequeue(h); v != 3 {
		t.Fatalf("got %d, want 3", v)
	}
}

// TestConcurrentMPMC: N producers push disjoint value ranges, N consumers
// pop everything; the union of popped values must be exactly the union of
// pushed ones and per-producer order must be preserved.
func TestConcurrentMPMC(t *testing.T) {
	const producers, consumers = 4, 4
	perProducer := 2000
	if testing.Short() {
		perProducer = 300
	}
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			q := New(mk, WithChecked(true), WithMaxThreads(producers+consumers))
			var wg sync.WaitGroup
			results := make(chan []uint64, consumers)
			total := producers * perProducer

			var consumed atomic.Int64
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := q.Register()
					defer h.Unregister()
					var got []uint64
					for {
						v, ok := q.Dequeue(h)
						if ok {
							got = append(got, v)
							consumed.Add(1)
							continue
						}
						if consumed.Load() >= int64(total) {
							results <- got
							return
						}
						runtime.Gosched()
					}
				}()
			}
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					h := q.Register()
					defer h.Unregister()
					base := uint64(p) << 32
					for i := 0; i < perProducer; i++ {
						q.Enqueue(h, base|uint64(i))
					}
				}(p)
			}
			wg.Wait()
			close(results)

			seen := map[uint64]bool{}
			lastPerProducer := map[uint64]int64{}
			for got := range results {
				perConsumerLast := map[uint64]int64{}
				for _, v := range got {
					if seen[v] {
						t.Fatalf("%s: duplicate value %x", name, v)
					}
					seen[v] = true
					p, i := v>>32, int64(v&0xffffffff)
					// FIFO per producer per consumer: a consumer must see a
					// producer's values in increasing order.
					if last, ok := perConsumerLast[p]; ok && i < last {
						t.Fatalf("%s: per-producer order violated", name)
					}
					perConsumerLast[p] = i
					if i > lastPerProducer[p] {
						lastPerProducer[p] = i
					}
				}
			}
			if len(seen) != total {
				t.Fatalf("%s: consumed %d values, want %d", name, len(seen), total)
			}
			if f := q.Arena().Stats().Faults; f != 0 {
				t.Fatalf("%s: %d memory faults", name, f)
			}
			q.Drain()
			if live := q.Arena().Stats().Live; live != 0 {
				t.Fatalf("%s: leaked %d nodes", name, live)
			}
		})
	}
}

package core

package core

// This file maps the paper's §3.3 correctness invariants, one test each,
// onto the implementation. The concurrent/adversarial versions of these
// properties are exercised by the stress tests and cmd/hestress; these
// tests pin the *mechanism* behind each invariant deterministically.

import (
	"testing"

	"repro/internal/reclaim"
)

// Invariant 1: "A reader willing to access the contents of object will
// have to publish the current eraClock, which is comprised between
// object.newEra and object.delEra."
func TestInvariant1PublishedEraWithinLifetime(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 1)
	reader := d.Register()

	ref, _ := arena.Alloc()
	d.OnAlloc(ref) // newEra = current clock
	cell := newTestCell(uint64(ref))

	// Drive the clock a few steps; the reader must publish the CURRENT
	// era, which is >= newEra, and the object is live so delEra is
	// conceptually infinite.
	d.SetEraClock(7)
	d.Protect(reader, 0, cell)
	pub := reader.Words[0].Load()
	if pub != 7 {
		t.Fatalf("published era = %d, want current clock 7", pub)
	}
	h := arena.Header(ref)
	if pub < h.BirthEra {
		t.Fatalf("published era %d below newEra %d", pub, h.BirthEra)
	}
}

// Invariant 2: "A reader with a published era that is lower than
// object.newEra can not have access to the object's contents" — because
// get_protected revalidates the clock, a reader holding a stale era is
// forced to republish before it can return a reference to a newer object.
func TestInvariant2StaleEraForcesRepublish(t *testing.T) {
	arena := testArena()
	ins := reclaim.NewInstrument(2)
	d := New(arena, reclaim.Config{MaxThreads: 2, Slots: 1, Instrument: ins})
	reader := d.Register()

	oldRef, _ := arena.Alloc()
	d.OnAlloc(oldRef)
	cell := newTestCell(uint64(oldRef))
	d.Protect(reader, 0, cell) // publishes era 1

	// A newer object is created at era 9.
	d.SetEraClock(9)
	newRef, _ := arena.Alloc()
	d.OnAlloc(newRef)
	cell.Store(uint64(newRef))

	got := d.Protect(reader, 0, cell)
	if got != newRef {
		t.Fatalf("Protect returned %v", got)
	}
	if pub := reader.Words[0].Load(); pub < arena.Header(newRef).BirthEra {
		t.Fatalf("reader accessed object born at era %d while publishing era %d",
			arena.Header(newRef).BirthEra, pub)
	}
}

// Invariant 3: "A reader with a published era that is higher than
// object.delEra will never access object" — such an era does not protect
// the object, so the reclaimer may free it.
func TestInvariant3HigherEraDoesNotProtect(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 1)
	reader := d.Register()
	writer := d.Register()

	victim, _ := arena.Alloc()
	d.OnAlloc(victim) // [1, ...]
	d.Retire(writer, victim)
	// victim: delEra = 1, freed immediately (no reader). Recreate the
	// situation with a reader whose era is strictly above delEra.
	victim2, _ := arena.Alloc()
	d.OnAlloc(victim2) // birth = current era (2)
	d.SetEraClock(5)
	cellElse, _ := arena.Alloc()
	d.OnAlloc(cellElse)
	other := newTestCell(uint64(cellElse))
	d.Protect(reader, 0, other) // reader publishes era 5

	d.SetEraClock(3) // retire victim2 with delEra 3 < 5
	d.Retire(writer, victim2)
	if arena.Validate(victim2) {
		t.Fatal("object with delEra below every published era must be freed")
	}
}

// Invariant 4: "A reclaimer will only be allowed to free the memory
// allocated to object if and only if no reader will be allowed to access
// the contents of object" — both directions.
func TestInvariant4FreeIffUnreachable(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 1)
	reader := d.Register()
	writer := d.Register()

	// Direction 1: a covered lifetime is NOT freed.
	covered, _ := arena.Alloc()
	d.OnAlloc(covered)
	cell := newTestCell(uint64(covered))
	d.Protect(reader, 0, cell) // era 1 inside [1, inf)
	d.Retire(writer, covered)
	if !arena.Validate(covered) {
		t.Fatal("freed while a reader's era lies inside the lifetime")
	}

	// Direction 2: once no era covers it, it IS freed on the next scan.
	d.Clear(reader)
	d.Scan(writer)
	if arena.Validate(covered) {
		t.Fatal("not freed although no published era covers the lifetime")
	}
}

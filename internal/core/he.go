// Package core implements Hazard Eras, the memory-reclamation algorithm of
//
//	P. Ramalhete and A. Correia, "Brief Announcement: Hazard Eras —
//	Non-Blocking Memory Reclamation", SPAA 2017.
//
// Hazard Eras combines the low reader-side synchronization of epoch-based
// schemes with the non-blocking progress of Hazard Pointers. Object lifetime
// is tracked against a global monotonic clock (eraClock): an object records
// the era of its birth (newEra) before becoming shared and the era of its
// death (delEra) when retired. Instead of publishing the pointer it is about
// to dereference (as HP does), a reader publishes the *era* it observed —
// and, crucially, republishes only when the era has changed, turning HP's
// per-node seq-cst store into a usually-taken fast path of two seq-cst loads
// (Algorithm 2 of the paper).
//
// This package also implements the two §3.4 extensions:
//
//   - k-advance: the eraClock is advanced only every k-th Retire, trading
//     reclamation latency (k× more pending objects) for fewer reader-side
//     era republications.
//   - min/max publication: a reader using many protection indices (deep
//     tree traversals) publishes only the minimum and maximum of its eras,
//     making the published footprint O(1) instead of O(depth).
//
// Progress (paper §3.2): Protect is lock-free (its loop only retries when
// the eraClock advanced, i.e. another thread made progress); Clear and
// Retire are wait-free bounded; Era is wait-free population oblivious.
package core

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/atomicx"
	"repro/internal/mem"
	"repro/internal/reclaim"
)

// noneEra is the paper's NONE: the value published when a slot protects
// nothing. The eraClock starts at 1, so 0 never names a real era.
const noneEra = 0

// Option configures the Hazard Eras domain.
type Option func(*Eras)

// WithAdvanceEvery sets k-advance (§3.4): the eraClock is advanced only on
// every k-th call to Retire by each thread. k=1 is the paper's Algorithm 3.
func WithAdvanceEvery(k int) Option {
	return func(d *Eras) {
		if k > 1 {
			d.advanceEvery = uint64(k)
		}
	}
}

// WithMinMax enables the §3.4 min/max optimization: only the lowest and
// highest currently-held eras are published per thread, regardless of how
// many protection indices the data structure uses.
func WithMinMax(on bool) Option {
	return func(d *Eras) { d.minMax = on }
}

// perThreadState is the thread-local (owner-only) reader state. held
// mirrors the published eras so the fast path can compare without an atomic
// load of its own slot — the paper notes prevEra "is relaxed and can even
// be replaced with a stack variable".
type perThreadState struct {
	held        []uint64 // era held per protection index (0 = none)
	retireCount uint64   // Retire calls, for k-advance
	// curMin/curMax track the published min/max in min/max mode. curMin may
	// lag (a slot holding the old minimum can be overwritten by a larger
	// era without raising curMin) — publishing a lower-than-necessary
	// minimum is conservative: it can only pin more, never less.
	curMin, curMax uint64
}

// perThread pads perThreadState out to a whole number of cache lines; the
// pad length is computed from unsafe.Sizeof so adding a field can never
// silently unbalance it.
type perThread struct {
	perThreadState
	_ [(atomicx.CacheLineSize - unsafe.Sizeof(perThreadState{})%atomicx.CacheLineSize) % atomicx.CacheLineSize]byte
}

// Eras is the Hazard Eras domain (the paper's HazardEras<T> class).
type Eras struct {
	reclaim.Base

	eraClock atomicx.PaddedUint64

	// he is the paper's he[MAX_THREADS][MAX_HES] flattened; each cell is
	// cache-line padded. In min/max mode only cells 0 (min) and 1 (max) of
	// each thread row are published.
	he []atomicx.PaddedUint64

	local []perThread

	advanceEvery uint64
	minMax       bool
}

var _ reclaim.Domain = (*Eras)(nil)

// New constructs a Hazard Eras domain over the given allocator.
func New(alloc reclaim.Allocator, cfg reclaim.Config, opts ...Option) *Eras {
	d := &Eras{advanceEvery: 1}
	for _, o := range opts {
		o(d)
	}
	cfg = cfg.Defaulted()
	if d.minMax && cfg.Slots < 2 {
		// Min/max mode publishes a [min, max] pair, so it needs two cells
		// per thread even when the structure asked for a single protection
		// index; the extra slot is simply never indexed.
		cfg.Slots = 2
	}
	d.Base = reclaim.NewBase(alloc, cfg)
	d.he = make([]atomicx.PaddedUint64, cfg.MaxThreads*cfg.Slots)
	d.local = make([]perThread, cfg.MaxThreads)
	for i := range d.local {
		d.local[i].held = make([]uint64, cfg.Slots)
	}
	d.eraClock.Store(1) // paper: eraClock = {1}
	return d
}

// Name implements reclaim.Domain.
func (d *Eras) Name() string {
	if d.minMax {
		return "HE-minmax"
	}
	return "HE"
}

// Era returns the current value of the global era clock (the paper's
// getEra()). Its value is what OnAlloc stamps into a new object's BirthEra.
func (d *Eras) Era() uint64 { return d.eraClock.Load() }

// OnAlloc stamps the birth era of a freshly allocated, not-yet-shared
// object. The paper requires this before the object is inserted into the
// data structure ("which can be easily done in the constructor of T").
func (d *Eras) OnAlloc(ref mem.Ref) {
	d.Alloc.Header(ref).BirthEra = d.eraClock.Load()
}

// BeginOp implements reclaim.Domain; pointer-based schemes need no
// per-operation entry protocol.
func (d *Eras) BeginOp(tid int) {}

// EndOp clears all protection indices (the paper's clear()).
func (d *Eras) EndOp(tid int) { d.Clear(tid) }

// Clear resets every hazard era of tid to NONE. Wait-free bounded.
func (d *Eras) Clear(tid int) {
	lt := &d.local[tid]
	if d.minMax {
		if lt.curMin != noneEra {
			d.he[tid*d.Cfg.Slots+0].Store(noneEra)
			if d.Cfg.Slots > 1 {
				d.he[tid*d.Cfg.Slots+1].Store(noneEra)
			}
			lt.curMin, lt.curMax = noneEra, noneEra
		}
	} else {
		for i := 0; i < d.Cfg.Slots; i++ {
			if lt.held[i] != noneEra {
				d.he[tid*d.Cfg.Slots+i].Store(noneEra)
			}
		}
	}
	for i := range lt.held {
		lt.held[i] = noneEra
	}
}

// Protect is the paper's get_protected() (Algorithm 2). It loads *src and
// publishes the era that was current when the reference was read, looping
// until the eraClock is observed unchanged across the read. On the fast
// path (era unchanged since this index's last publication) it issues two
// seq-cst loads and no store — the mechanism behind the paper's headline
// throughput gain over Hazard Pointers.
func (d *Eras) Protect(tid, index int, src *atomic.Uint64) mem.Ref {
	lt := &d.local[tid]
	prevEra := lt.held[index]
	ins := d.Ins
	ins.Visit(tid)
	for {
		ptr := mem.Ref(src.Load())
		ins.Load(tid)
		era := d.eraClock.Load()
		ins.Load(tid)
		if era == prevEra {
			return ptr
		}
		d.publish(tid, index, era, lt)
		prevEra = era
	}
}

// publish records era in the thread-local slot and pushes the published
// view: the slot itself in standard mode, or the maintained min/max pair in
// min/max mode. The min/max update is O(1): the era clock is monotone, so a
// fresh era can only raise the max (or seed both); the minimum only ever
// moves down to a newly observed smaller value, and a slot overwrite that
// removes the old minimum simply leaves curMin conservatively low until
// Clear.
func (d *Eras) publish(tid, index int, era uint64, lt *perThread) {
	lt.held[index] = era
	base := tid * d.Cfg.Slots
	if !d.minMax {
		d.he[base+index].Store(era)
		d.Ins.Store(tid)
		return
	}
	if lt.curMin == noneEra {
		lt.curMin, lt.curMax = era, era
		d.he[base+0].Store(era)
		d.Ins.Store(tid)
		if d.Cfg.Slots > 1 {
			d.he[base+1].Store(era)
			d.Ins.Store(tid)
		}
		return
	}
	if era < lt.curMin {
		lt.curMin = era
		d.he[base+0].Store(era)
		d.Ins.Store(tid)
	}
	if era > lt.curMax {
		lt.curMax = era
		if d.Cfg.Slots > 1 {
			d.he[base+1].Store(era)
			d.Ins.Store(tid)
		}
	}
}

// Retire is the paper's retire() (Algorithm 3): stamp delEra, append to the
// calling thread's retired list, advance the eraClock (every k-th call
// under k-advance) if no other thread already advanced it, then — once the
// list reaches the scan threshold (every retire under the paper's default;
// every R·T·S retires under Config.ScanR amortization) — scan the retired
// list freeing every object whose lifetime no eras-in-use overlap.
// Wait-free bounded: no retries, and the retired list is bounded by
// Equation 1 of the paper (times R under amortization).
func (d *Eras) Retire(tid int, ref mem.Ref) {
	ref = ref.Unmarked()
	currEra := d.eraClock.Load()
	d.Alloc.Header(ref).RetireEra = currEra
	d.PushRetired(tid, ref)

	lt := &d.local[tid]
	lt.retireCount++
	if lt.retireCount%d.advanceEvery == 0 && d.eraClock.Load() == currEra {
		// Benign race, exactly as the paper's line 51: two threads may both
		// advance, which only makes eras pass faster.
		d.eraClock.Add(1)
	}
	if d.ScanDue(tid) {
		d.scan(tid)
	}
}

// Scan runs one reclamation pass over tid's retired list, freeing every
// object not protected by any published era. Retire calls it at the scan
// threshold; it is exported as the ScanNow escape hatch for callers that
// want reclamation before the threshold (harness teardown, tests, memory
// pressure).
func (d *Eras) Scan(tid int) { d.scan(tid) }

// scan frees every retired object not protected by any published era. The
// published-era array is snapshotted once into tid's reusable scratch
// buffer and sorted, so each retired object is tested with a binary search
// instead of re-reading the whole array (see reclaim/snapshot.go); the
// per-object condition is exactly protected()'s.
func (d *Eras) scan(tid int) {
	d.NoteScan(tid)
	d.AdoptOrphans(tid)
	rlist := d.Retired(tid)
	if len(rlist) == 0 {
		return
	}
	slots := d.Cfg.Slots
	if d.minMax {
		// Snapshot each thread's published [min, max] envelope. The
		// three-clause §3.4 condition in protected() is exactly interval
		// intersection — (lo <= birth <= hi) or (lo <= retire <= hi) or
		// enclosure all reduce to lo <= retire && birth <= hi — and a
		// torn read that yields hi < lo (fresh min beside a stale max)
		// only ever satisfies the enclosure clause, which is the
		// intersection test for the normalized [hi, lo]. So normalizing
		// preserves the semantics exactly.
		snap := d.IntervalScratch(tid)
		snap.Begin()
		for t := 0; t < d.Cfg.MaxThreads; t++ {
			lo := d.he[t*slots+0].Load()
			if lo == noneEra {
				continue
			}
			hi := lo
			if h := d.he[t*slots+1].Load(); h != noneEra {
				hi = h
			}
			if hi < lo {
				lo, hi = hi, lo
			}
			snap.Add(lo, hi)
		}
		snap.Seal()
		d.ReclaimUnprotected(tid, func(obj mem.Ref) bool {
			h := d.Alloc.Header(obj)
			return snap.Intersects(h.BirthEra, h.RetireEra)
		})
		return
	}
	snap := d.EraScratch(tid)
	snap.Begin()
	for i := 0; i < d.Cfg.MaxThreads*slots; i++ {
		if era := d.he[i].Load(); era != noneEra {
			snap.Add(era)
		}
	}
	snap.Seal()
	d.ReclaimUnprotected(tid, func(obj mem.Ref) bool {
		h := d.Alloc.Header(obj)
		return snap.CoversRange(h.BirthEra, h.RetireEra)
	})
}

// protected reports whether any thread has published an era within
// [BirthEra, RetireEra] of obj — the paper's lines 57-63, or the §3.4
// min/max condition when that mode is active.
func (d *Eras) protected(obj mem.Ref) bool {
	h := d.Alloc.Header(obj)
	birth, retire := h.BirthEra, h.RetireEra
	slots := d.Cfg.Slots
	if d.minMax {
		for t := 0; t < d.Cfg.MaxThreads; t++ {
			lo := d.he[t*slots+0].Load()
			if lo == noneEra {
				continue
			}
			hi := lo
			if h := d.he[t*slots+1].Load(); h != noneEra {
				hi = h
			}
			// §3.4: the object is protected when its birth or retire era
			// falls inside [lo,hi], or its lifetime encloses the range.
			if (lo <= birth && birth <= hi) ||
				(lo <= retire && retire <= hi) ||
				(birth <= lo && retire >= hi) {
				return true
			}
		}
		return false
	}
	for i := 0; i < d.Cfg.MaxThreads*slots; i++ {
		era := d.he[i].Load()
		if era == noneEra || era < birth || era > retire {
			continue
		}
		return true
	}
	return false
}

// Unregister drains the departing thread before releasing its id: any
// remaining protections are dropped, a final scan reclaims everything now
// unprotected, and survivors (objects pinned by *other* threads' eras) are
// handed to the shared orphan pool for the next scanning thread to adopt.
// Without this, amortized scanning would strand up to threshold-1 objects
// per departing thread.
func (d *Eras) Unregister(tid int) {
	d.Clear(tid)
	d.scan(tid)
	d.Abandon(tid)
	d.Base.Unregister(tid)
}

// Drain implements reclaim.Domain (the paper's destructor).
func (d *Eras) Drain() { d.DrainAll() }

// Stats implements reclaim.Domain.
func (d *Eras) Stats() reclaim.Stats {
	s := d.BaseStats()
	s.EraClock = d.eraClock.Load()
	return s
}

// SetEraClock force-sets the global clock. It exists solely for the
// Appendix-B overflow test and the deterministic figure scenarios; never
// call it while readers are active.
func (d *Eras) SetEraClock(v uint64) { d.eraClock.Store(v) }

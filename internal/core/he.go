// Package core implements Hazard Eras, the memory-reclamation algorithm of
//
//	P. Ramalhete and A. Correia, "Brief Announcement: Hazard Eras —
//	Non-Blocking Memory Reclamation", SPAA 2017.
//
// Hazard Eras combines the low reader-side synchronization of epoch-based
// schemes with the non-blocking progress of Hazard Pointers. Object lifetime
// is tracked against a global monotonic clock (eraClock): an object records
// the era of its birth (newEra) before becoming shared and the era of its
// death (delEra) when retired. Instead of publishing the pointer it is about
// to dereference (as HP does), a reader publishes the *era* it observed —
// and, crucially, republishes only when the era has changed, turning HP's
// per-node seq-cst store into a usually-taken fast path of two seq-cst loads
// (Algorithm 2 of the paper).
//
// This package also implements the two §3.4 extensions:
//
//   - k-advance: the eraClock is advanced only every k-th Retire, trading
//     reclamation latency (k× more pending objects) for fewer reader-side
//     era republications.
//   - min/max publication: a reader using many protection indices (deep
//     tree traversals) publishes only the minimum and maximum of its eras,
//     making the published footprint O(1) instead of O(depth).
//
// Progress (paper §3.2): Protect is lock-free (its loop only retries when
// the eraClock advanced, i.e. another thread made progress); Clear and
// Retire are wait-free bounded; Era is wait-free population oblivious.
//
// Where the paper indexes fixed per-thread arrays with a tid, this
// implementation works on reclaim.Handle sessions: a session's hazard-era
// cells live in its registry slot (h.Words), its owner-only held mirror in
// h.Held, and its min/max envelope in h.Lo/h.Hi, so no per-call indexing
// remains and the registry can grow past the initial capacity.
package core

import (
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/mem"
	"repro/internal/reclaim"
	"repro/internal/schedtest"
)

// noneEra is the paper's NONE: the value published when a slot protects
// nothing. The eraClock starts at 1, so 0 never names a real era.
const noneEra = 0

// Option configures the Hazard Eras domain.
type Option func(*Eras)

// WithAdvanceEvery sets k-advance (§3.4): the eraClock is advanced only on
// every k-th call to Retire by each session. k=1 is the paper's Algorithm 3.
func WithAdvanceEvery(k int) Option {
	return func(d *Eras) {
		if k > 1 {
			d.advanceEvery = uint64(k)
		}
	}
}

// WithMinMax enables the §3.4 min/max optimization: only the lowest and
// highest currently-held eras are published per session, regardless of how
// many protection indices the data structure uses.
func WithMinMax(on bool) Option {
	return func(d *Eras) { d.minMax = on }
}

// Eras is the Hazard Eras domain (the paper's HazardEras<T> class). Each
// registered session's published hazard eras are the cells of its registry
// slot — the paper's he[tid][i] row, reached through the block chain during
// scans and through the cached h.Words on the reader paths. In min/max mode
// only cells 0 (min) and 1 (max) of each row are published.
type Eras struct {
	reclaim.Base

	// The leading pad gives the clock a cache line of its own: PaddedUint64
	// pads only after its value, so without it the hottest word in the
	// domain (bumped on every retire) would share a line with the embedded
	// Base's trailing fields.
	_        atomicx.CacheLinePad
	eraClock atomicx.PaddedUint64

	advanceEvery uint64
	minMax       bool
	mutation     TestingMutation
}

// TestingMutation selects a deliberately introduced defect for
// cmd/hecheck's mutation kill-check: the harness must detect each of these
// as a safety violation within its bounded schedule budget. Production
// code never sets one.
type TestingMutation int

const (
	// MutNone is the correct algorithm.
	MutNone TestingMutation = iota
	// MutSkipPublish makes publish update only the owner-side Held mirror
	// and skip the seq-cst store of the protection cell: readers believe
	// they are protected while scanners see an idle slot.
	MutSkipPublish
	// MutInvertLifespan inverts scan's protected() predicate: a scan frees
	// exactly the objects whose lifespans ARE covered by published eras.
	MutInvertLifespan
)

// EnableMutation installs a kill-check defect (construction/setup time
// only). Test-only: it exists so the detection machinery itself can be
// validated against a scheme known to be broken.
func (d *Eras) EnableMutation(m TestingMutation) { d.mutation = m }

var _ reclaim.Domain = (*Eras)(nil)

// New constructs a Hazard Eras domain over the given allocator.
func New(alloc reclaim.Allocator, cfg reclaim.Config, opts ...Option) *Eras {
	d := &Eras{advanceEvery: 1}
	for _, o := range opts {
		o(d)
	}
	cfg = cfg.Defaulted()
	if d.minMax && cfg.Slots < 2 {
		// Min/max mode publishes a [min, max] pair, so it needs two cells
		// per session even when the structure asked for a single protection
		// index; the extra slot is simply never indexed.
		cfg.Slots = 2
	}
	d.Base = reclaim.NewBase(alloc, cfg, cfg.Slots, noneEra)
	d.Base.Dom = d
	d.eraClock.Store(1) // paper: eraClock = {1}
	// Era view for the observability layer: a session's pinned era is the
	// minimum over its published cells ([min, max] pair or per-index eras).
	d.SetObsEraView(d.Era, func(words []atomicx.PaddedUint64) (uint64, bool) {
		var low uint64
		for i := range words {
			if e := words[i].Load(); e != noneEra && (low == noneEra || e < low) {
				low = e
			}
		}
		return low, low != noneEra
	})
	return d
}

// Name implements reclaim.Domain.
func (d *Eras) Name() string {
	if d.minMax {
		return "HE-minmax"
	}
	return "HE"
}

// Era returns the current value of the global era clock (the paper's
// getEra()). Its value is what OnAlloc stamps into a new object's BirthEra.
func (d *Eras) Era() uint64 { return d.eraClock.Load() }

// OnAlloc stamps the birth era of a freshly allocated, not-yet-shared
// object. The paper requires this before the object is inserted into the
// data structure ("which can be easily done in the constructor of T").
func (d *Eras) OnAlloc(ref mem.Ref) {
	e := d.eraClock.Load()
	d.Alloc.Header(ref).BirthEra = e
	d.TraceAlloc(ref, e)
}

// BeginOp implements reclaim.Domain; pointer-based schemes need no
// per-operation entry protocol.
func (d *Eras) BeginOp(h *reclaim.Handle) {}

// EndOp clears all protection indices (the paper's clear()).
func (d *Eras) EndOp(h *reclaim.Handle) { d.Clear(h) }

// Clear resets every hazard era of the session to NONE. Wait-free bounded.
func (d *Eras) Clear(h *reclaim.Handle) {
	if d.minMax {
		if h.Lo != noneEra {
			h.Words[0].Store(noneEra)
			if len(h.Words) > 1 {
				h.Words[1].Store(noneEra)
			}
			h.Lo, h.Hi = noneEra, noneEra
		}
	} else {
		for i := range h.Held {
			if h.Held[i] != noneEra {
				h.Words[i].Store(noneEra)
			}
		}
	}
	for i := range h.Held {
		h.Held[i] = noneEra
	}
}

// Protect is the paper's get_protected() (Algorithm 2). It loads *src and
// publishes the era that was current when the reference was read, looping
// until the eraClock is observed unchanged across the read. On the fast
// path (era unchanged since this index's last publication) it issues two
// seq-cst loads and no store — the mechanism behind the paper's headline
// throughput gain over Hazard Pointers.
func (d *Eras) Protect(h *reclaim.Handle, index int, src *atomic.Uint64) mem.Ref {
	prevEra := h.Held[index]
	h.InsVisit()
	for {
		ptr := mem.Ref(src.Load())
		h.InsLoad()
		// The window this gate exposes: the reference is read but the era
		// that will protect it is not yet validated/published.
		schedtest.Point(schedtest.PointProtect)
		era := d.eraClock.Load()
		h.InsLoad()
		if era == prevEra {
			return ptr
		}
		d.publish(h, index, era)
		prevEra = era
	}
}

// publish records era in the session-local slot mirror and pushes the
// published view: the cell itself in standard mode, or the maintained
// min/max pair in min/max mode. The min/max update is O(1): the era clock
// is monotone, so a fresh era can only raise the max (or seed both); the
// minimum only ever moves down to a newly observed smaller value, and a
// slot overwrite that removes the old minimum simply leaves h.Lo
// conservatively low until Clear.
func (d *Eras) publish(h *reclaim.Handle, index int, era uint64) {
	h.Held[index] = era
	if d.mutation == MutSkipPublish {
		// Kill-check defect: the owner-side mirror advances, the published
		// cell does not — Protect's fast path now returns references no
		// scan will ever see as protected.
		return
	}
	if !d.minMax {
		h.Words[index].Store(era)
		h.InsStore()
		return
	}
	if h.Lo == noneEra {
		h.Lo, h.Hi = era, era
		h.Words[0].Store(era)
		h.InsStore()
		if len(h.Words) > 1 {
			h.Words[1].Store(era)
			h.InsStore()
		}
		return
	}
	if era < h.Lo {
		h.Lo = era
		h.Words[0].Store(era)
		h.InsStore()
	}
	if era > h.Hi {
		h.Hi = era
		if len(h.Words) > 1 {
			h.Words[1].Store(era)
			h.InsStore()
		}
	}
}

// Retire is the paper's retire() (Algorithm 3): stamp delEra, append to the
// calling session's retired list, advance the eraClock (every k-th call
// under k-advance) if no other thread already advanced it, then — once the
// list reaches the scan threshold (every retire under the paper's default;
// every R·T·S retires under Config.ScanR amortization) — scan the retired
// list freeing every object whose lifetime no eras-in-use overlap.
// Wait-free bounded: no retries, and the retired list is bounded by
// Equation 1 of the paper (times R under amortization).
func (d *Eras) Retire(h *reclaim.Handle, ref mem.Ref) {
	ref = ref.Unmarked()
	currEra := d.eraClock.Load()
	d.Alloc.Header(ref).RetireEra = currEra
	h.PushRetired(ref)

	h.RetireCount++
	if h.RetireCount%d.advanceEvery == 0 && d.eraClock.Load() == currEra {
		schedtest.Point(schedtest.PointEra)
		// Benign race, exactly as the paper's line 51: two threads may both
		// advance, which only makes eras pass faster.
		h.ObsEra(d.eraClock.Add(1))
	}
	if h.ScanDue() && !h.TryOffload() {
		d.scan(h)
	}
}

// Scan runs one reclamation pass over the session's retired list, freeing
// every object not protected by any published era. Retire calls it at the
// scan threshold; it is exported as the ScanNow escape hatch for callers
// that want reclamation before the threshold (harness teardown, tests,
// memory pressure).
func (d *Eras) Scan(h *reclaim.Handle) { d.scan(h) }

// scan frees every retired object not protected by any published era. The
// published-era cells of every slot in the registry chain are snapshotted
// once into the session's reusable scratch buffer and sorted, so each
// retired object is tested with a binary search instead of re-reading the
// whole registry (see reclaim/snapshot.go); the per-object condition is
// exactly protected()'s. Idle and free slots publish noneEra and are
// skipped by value; blocks published after the walk started protect only
// sessions that cannot hold the objects scanned here (see handle.go).
func (d *Eras) scan(h *reclaim.Handle) {
	h.NoteScan()
	defer h.NoteScanEnd()
	h.AdoptOrphans()
	if len(h.Retired()) == 0 {
		return
	}
	if d.minMax {
		// Snapshot each session's published [min, max] envelope. The
		// three-clause §3.4 condition in protected() is exactly interval
		// intersection — (lo <= birth <= hi) or (lo <= retire <= hi) or
		// enclosure all reduce to lo <= retire && birth <= hi — and a
		// torn read that yields hi < lo (fresh min beside a stale max)
		// only ever satisfies the enclosure clause, which is the
		// intersection test for the normalized [hi, lo]. So normalizing
		// preserves the semantics exactly.
		snap := h.IntervalScratch()
		snap.Begin()
		for blk := d.FirstBlock(); blk != nil; blk = blk.Next() {
			schedtest.Point(schedtest.PointScan)
			slots := blk.Slots()
			for t := range slots {
				w := slots[t].Words()
				lo := w[0].Load()
				if lo == noneEra {
					continue
				}
				hi := lo
				if x := w[1].Load(); x != noneEra {
					hi = x
				}
				if hi < lo {
					lo, hi = hi, lo
				}
				snap.Add(lo, hi)
			}
		}
		snap.Seal()
		h.ReclaimUnprotected(d.mutated(func(obj mem.Ref) bool {
			hdr := d.Alloc.Header(obj)
			return snap.Intersects(hdr.BirthEra, hdr.RetireEra)
		}))
		return
	}
	snap := h.EraScratch()
	snap.Begin()
	for blk := d.FirstBlock(); blk != nil; blk = blk.Next() {
		schedtest.Point(schedtest.PointScan)
		slots := blk.Slots()
		for t := range slots {
			w := slots[t].Words()
			for i := range w {
				if era := w[i].Load(); era != noneEra {
					snap.Add(era)
				}
			}
		}
	}
	snap.Seal()
	h.ReclaimUnprotected(d.mutated(func(obj mem.Ref) bool {
		hdr := d.Alloc.Header(obj)
		return snap.CoversRange(hdr.BirthEra, hdr.RetireEra)
	}))
}

// mutated wraps a scan's protected() predicate with the MutInvertLifespan
// kill-check defect when it is enabled; otherwise the predicate is
// returned untouched.
func (d *Eras) mutated(protected func(mem.Ref) bool) func(mem.Ref) bool {
	if d.mutation != MutInvertLifespan {
		return protected
	}
	return func(obj mem.Ref) bool { return !protected(obj) }
}

// protected reports whether any session has published an era within
// [BirthEra, RetireEra] of obj — the paper's lines 57-63, or the §3.4
// min/max condition when that mode is active.
func (d *Eras) protected(obj mem.Ref) bool {
	hdr := d.Alloc.Header(obj)
	birth, retire := hdr.BirthEra, hdr.RetireEra
	for blk := d.FirstBlock(); blk != nil; blk = blk.Next() {
		slots := blk.Slots()
		for t := range slots {
			w := slots[t].Words()
			if d.minMax {
				lo := w[0].Load()
				if lo == noneEra {
					continue
				}
				hi := lo
				if x := w[1].Load(); x != noneEra {
					hi = x
				}
				// §3.4: the object is protected when its birth or retire era
				// falls inside [lo,hi], or its lifetime encloses the range.
				if (lo <= birth && birth <= hi) ||
					(lo <= retire && retire <= hi) ||
					(birth <= lo && retire >= hi) {
					return true
				}
				continue
			}
			for i := range w {
				era := w[i].Load()
				if era == noneEra || era < birth || era > retire {
					continue
				}
				return true
			}
		}
	}
	return false
}

// Unregister drains the departing session before recycling its slot: any
// remaining protections are dropped, a final scan reclaims everything now
// unprotected, and survivors (objects pinned by *other* sessions' eras) are
// handed to the shared orphan pool for the next scanning session to adopt.
// Without this, amortized scanning would strand up to threshold-1 objects
// per departing session.
func (d *Eras) Unregister(h *reclaim.Handle) {
	d.Clear(h)
	d.scan(h)
	h.Abandon()
	d.Base.Unregister(h)
}

// Drain implements reclaim.Domain (the paper's destructor).
func (d *Eras) Drain() { d.DrainAll() }

// Stats implements reclaim.Domain.
func (d *Eras) Stats() reclaim.Stats {
	s := d.BaseStats()
	s.EraClock = d.eraClock.Load()
	return s
}

// SetEraClock force-sets the global clock. It exists solely for the
// Appendix-B overflow test and the deterministic figure scenarios; never
// call it while readers are active.
func (d *Eras) SetEraClock(v uint64) { d.eraClock.Store(v) }

package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/reclaim"
)

// newTestCell builds an atomic cell holding v.
func newTestCell(v uint64) *atomic.Uint64 {
	c := &atomic.Uint64{}
	c.Store(v)
	return c
}

// naiveProtected is the brute-force reading of the paper's retire()
// condition (lines 57-63): an object is protected iff some published era
// lies within its lifetime.
func naiveProtected(eras []uint64, birth, retire uint64) bool {
	for _, e := range eras {
		if e != noneEra && e >= birth && e <= retire {
			return true
		}
	}
	return false
}

// TestProtectedMatchesNaiveModelQuick: the scan in standard mode must agree
// exactly with the brute-force model for arbitrary published eras and
// lifetimes.
func TestProtectedMatchesNaiveModelQuick(t *testing.T) {
	const threads, slots = 3, 3
	prop := func(rawEras [threads * slots]uint16, b16, r16 uint16) bool {
		arena := mem.NewArena[tnode]()
		d := New(arena, reclaim.Config{MaxThreads: threads, Slots: slots})
		eras := make([]uint64, threads*slots)
		regSlots := d.FirstBlock().Slots()
		for i, e := range rawEras {
			eras[i] = uint64(e % 50) // dense range so overlaps actually occur
			regSlots[i/slots].Word(i % slots).Store(eras[i])
		}
		birth := uint64(b16 % 50)
		retire := birth + uint64(r16%10)
		ref, _ := arena.Alloc()
		h := arena.Header(ref)
		h.BirthEra, h.RetireEra = birth, retire
		return d.protected(ref) == naiveProtected(eras, birth, retire)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestMinMaxIsConservativeQuick: for any per-thread sets of held eras, the
// min/max publication (§3.4) must protect a SUPERSET of what exact per-slot
// publication protects — conservativeness is what makes the optimization
// safe.
func TestMinMaxIsConservativeQuick(t *testing.T) {
	const threads, slots = 3, 4
	prop := func(rawEras [threads * slots]uint16, b16, r16 uint16) bool {
		arenaStd := mem.NewArena[tnode]()
		arenaMM := mem.NewArena[tnode]()
		std := New(arenaStd, reclaim.Config{MaxThreads: threads, Slots: slots})
		mm := New(arenaMM, reclaim.Config{MaxThreads: threads, Slots: slots}, WithMinMax(true))

		// Publish the same held sets through both disciplines.
		stdSlots := std.FirstBlock().Slots()
		mmSlots := mm.FirstBlock().Slots()
		for ti := 0; ti < threads; ti++ {
			var lo, hi uint64
			for si := 0; si < slots; si++ {
				e := uint64(rawEras[ti*slots+si] % 50)
				stdSlots[ti].Word(si).Store(e)
				if e == noneEra {
					continue
				}
				if lo == 0 || e < lo {
					lo = e
				}
				if e > hi {
					hi = e
				}
			}
			mmSlots[ti].Word(0).Store(lo)
			mmSlots[ti].Word(1).Store(hi)
		}

		birth := uint64(b16 % 50)
		retire := birth + uint64(r16%10)
		refS, _ := arenaStd.Alloc()
		hs := arenaStd.Header(refS)
		hs.BirthEra, hs.RetireEra = birth, retire
		refM, _ := arenaMM.Alloc()
		hm := arenaMM.Header(refM)
		hm.BirthEra, hm.RetireEra = birth, retire

		// Exact-protected implies minmax-protected.
		if std.protected(refS) && !mm.protected(refM) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestMinMaxPublishMaintainsEnvelope: after any sequence of Protect calls
// at monotonically non-decreasing clock values, the published [lo, hi] pair
// must envelope every era currently recorded in the thread's held slots.
func TestMinMaxPublishMaintainsEnvelope(t *testing.T) {
	prop := func(steps []uint8) bool {
		arena := mem.NewArena[tnode]()
		const slots = 4
		d := New(arena, reclaim.Config{MaxThreads: 2, Slots: slots}, WithMinMax(true))
		h := d.Register()
		ref, _ := arena.Alloc()
		cell := newTestCell(uint64(ref))

		clock := uint64(1)
		for _, s := range steps {
			clock += uint64(s % 3) // sometimes advance, sometimes not
			d.SetEraClock(clock)
			d.Protect(h, int(s)%slots, cell)

			lo := h.Words[0].Load()
			hi := h.Words[1].Load()
			for _, held := range h.Held {
				if held == noneEra {
					continue
				}
				if held < lo || held > hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxClampsToTwoSlots(t *testing.T) {
	// A single-slot structure (Treiber stack) under min/max mode gets its
	// slot count clamped to 2, since the mode publishes a [min, max] pair.
	arena := mem.NewArena[tnode]()
	d := New(arena, reclaim.Config{MaxThreads: 2, Slots: 1}, WithMinMax(true))
	if d.Cfg.Slots != 2 {
		t.Fatalf("Slots = %d, want clamped to 2", d.Cfg.Slots)
	}
	// The single index the structure asked for must work end to end.
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	cell := newTestCell(uint64(ref))
	h := d.Register()
	d.Protect(h, 0, cell)
	d.EndOp(h)
}

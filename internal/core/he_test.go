package core

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mem"
	"repro/internal/reclaim"
)

// tnode is the payload used throughout the scheme tests.
type tnode struct {
	val  uint64
	next atomic.Uint64
}

const poisonVal = 0xDEADDEADDEADDEAD

func testArena() *mem.Arena[tnode] {
	return mem.NewArena[tnode](
		mem.Checked[tnode](true),
		mem.WithPoison[tnode](func(n *tnode) { n.val = poisonVal }),
	)
}

func newHE(arena *mem.Arena[tnode], threads, slots int, opts ...Option) *Eras {
	return New(arena, reclaim.Config{MaxThreads: threads, Slots: slots}, opts...)
}

func TestEraClockStartsAtOne(t *testing.T) {
	d := newHE(testArena(), 2, 3)
	if d.Era() != 1 {
		t.Fatalf("Era = %d, want 1 (paper: eraClock = {1})", d.Era())
	}
	if d.Name() != "HE" {
		t.Fatalf("Name = %q", d.Name())
	}
}

func TestOnAllocStampsBirthEra(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3)
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	if got := arena.Header(ref).BirthEra; got != 1 {
		t.Fatalf("BirthEra = %d, want 1", got)
	}
}

func TestRetireUnprotectedFreesImmediately(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3)
	h := d.Register()
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	d.Retire(h, ref)
	s := d.Stats()
	if s.Freed != 1 || s.Pending != 0 {
		t.Fatalf("unprotected object not freed: %+v", s)
	}
	if s.EraClock != 2 {
		t.Fatalf("eraClock should have advanced to 2, got %d", s.EraClock)
	}
}

func TestRetireAdvancesClockOnlyWhenUnchanged(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3)
	h := d.Register()
	for i := 0; i < 5; i++ {
		ref, _ := arena.Alloc()
		d.OnAlloc(ref)
		d.Retire(h, ref)
	}
	// Single retirer: exactly one advance per retire.
	if got := d.Era(); got != 6 {
		t.Fatalf("Era = %d, want 6", got)
	}
}

func TestProtectPublishesObservedEra(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3)
	h := d.Register()
	ref, n := arena.Alloc()
	n.val = 7
	d.OnAlloc(ref)
	var cell atomic.Uint64
	cell.Store(uint64(ref))

	got := d.Protect(h, 0, &cell)
	if got != ref {
		t.Fatalf("Protect returned %v, want %v", got, ref)
	}
	if arena.Get(got).val != 7 {
		t.Fatal("protected deref failed")
	}
	if h.Words[0].Load() != 1 {
		t.Fatalf("published era = %d, want 1", h.Words[0].Load())
	}
}

func TestProtectFastPathSkipsStore(t *testing.T) {
	arena := testArena()
	ins := reclaim.NewInstrument(2)
	d := New(arena, reclaim.Config{MaxThreads: 2, Slots: 3, Instrument: ins})
	h := d.Register()
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	var cell atomic.Uint64
	cell.Store(uint64(ref))

	d.Protect(h, 0, &cell) // publishes era 1
	ins.Reset()
	for i := 0; i < 10; i++ {
		d.Protect(h, 0, &cell) // era unchanged: fast path
	}
	s := ins.Snapshot()
	if s.Stores != 0 {
		t.Fatalf("fast path issued %d stores, want 0", s.Stores)
	}
	if s.PerVisitLoads() != 2 {
		t.Fatalf("fast path loads/visit = %v, want 2 (paper: two seq-cst loads)", s.PerVisitLoads())
	}
}

func TestProtectRepublishesAfterEraChange(t *testing.T) {
	arena := testArena()
	ins := reclaim.NewInstrument(2)
	d := New(arena, reclaim.Config{MaxThreads: 2, Slots: 3, Instrument: ins})
	reader := d.Register()
	writer := d.Register()
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	var cell atomic.Uint64
	cell.Store(uint64(ref))

	d.Protect(reader, 0, &cell) // era 1 published
	// Writer retires an unrelated node, advancing the clock.
	other, _ := arena.Alloc()
	d.OnAlloc(other)
	d.Retire(writer, other)

	ins.Reset()
	d.Protect(reader, 0, &cell)
	if s := ins.Snapshot(); s.Stores != 1 {
		t.Fatalf("expected exactly one republication store, got %d", s.Stores)
	}
	if reader.Words[0].Load() != d.Era() {
		t.Fatal("republished era must equal current clock")
	}
}

func TestProtectPreservesMarkBit(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3)
	h := d.Register()
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	var cell atomic.Uint64
	cell.Store(uint64(ref.WithMark()))
	got := d.Protect(h, 0, &cell)
	if !got.Marked() || got.Unmarked() != ref {
		t.Fatalf("mark bit mangled: %v", got)
	}
}

func TestReaderBlocksReclamationOfCoveredLifetime(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3)
	reader := d.Register()
	writer := d.Register()

	ref, _ := arena.Alloc()
	d.OnAlloc(ref) // BirthEra = 1
	var cell atomic.Uint64
	cell.Store(uint64(ref))
	d.Protect(reader, 0, &cell) // reader publishes era 1

	cell.Store(uint64(mem.NilRef)) // unlink
	d.Retire(writer, ref)          // RetireEra = 1, clock -> 2
	if s := d.Stats(); s.Pending != 1 || s.Freed != 0 {
		t.Fatalf("protected object must stay pending: %+v", s)
	}

	d.Clear(reader)
	d.Scan(writer)
	if s := d.Stats(); s.Pending != 0 || s.Freed != 1 {
		t.Fatalf("object must be freed after Clear: %+v", s)
	}
}

// TestFig2Scenario replays the paper's Figure 2 schematic step by step:
// list A,B,D; clock 3; a reader published era 2. B is removed (delEra 3,
// clock->4) and cannot be deleted; C is inserted (newEra 4); C is removed
// (delEra 4, clock->5) and CAN be deleted immediately because era 2 does
// not intersect [4,4].
func TestFig2Scenario(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 4, 3)
	reader := d.Register()
	writer := d.Register()

	// Pre-step: drive the clock to 3 as in the schematic.
	d.SetEraClock(2)
	refB, _ := arena.Alloc()
	arena.Header(refB).BirthEra = 1 // B existed before the schematic starts
	d.SetEraClock(3)

	// Reader published era 2 (it protected something at era 2).
	reader.Words[0].Store(2)
	reader.Held[0] = 2

	// Step 2: remove B.
	d.Retire(writer, refB)
	if arena.Header(refB).RetireEra != 3 {
		t.Fatalf("B.delEra = %d, want 3", arena.Header(refB).RetireEra)
	}
	if d.Era() != 4 {
		t.Fatalf("clock = %d, want 4", d.Era())
	}
	if s := d.Stats(); s.Freed != 0 {
		t.Fatal("B must not be deleted: reader at era 2 may access it")
	}

	// Step 3: insert C with newEra 4.
	refC, _ := arena.Alloc()
	d.OnAlloc(refC)
	if arena.Header(refC).BirthEra != 4 {
		t.Fatalf("C.newEra = %d, want 4", arena.Header(refC).BirthEra)
	}

	// Step 4: remove C; deletable immediately despite the era-2 reader.
	d.Retire(writer, refC)
	if arena.Header(refC).RetireEra != 4 {
		t.Fatalf("C.delEra = %d, want 4", arena.Header(refC).RetireEra)
	}
	if d.Era() != 5 {
		t.Fatalf("clock = %d, want 5", d.Era())
	}
	if !arena.Validate(refB) {
		t.Fatal("B must still be allocated (reader at era 2)")
	}
	if arena.Validate(refC) {
		t.Fatal("C must have been freed immediately")
	}
	if s := d.Stats(); s.Freed != 1 || s.Pending != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestStalledReaderDoesNotBlockNewReclamation is the essence of Appendix A
// (Fig. 6): a reader stuck at an ancient era cannot prevent reclamation of
// objects born after it.
func TestStalledReaderDoesNotBlockNewReclamation(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 4, 3)
	reader := d.Register()
	writer := d.Register()

	old, _ := arena.Alloc()
	d.OnAlloc(old)
	var cell atomic.Uint64
	cell.Store(uint64(old))
	d.Protect(reader, 0, &cell) // reader stalls holding era 1 forever

	d.Retire(writer, old) // pinned by the stalled reader
	for i := 0; i < 100; i++ {
		ref, _ := arena.Alloc()
		d.OnAlloc(ref) // born at era >= 2 > reader's era
		d.Retire(writer, ref)
	}
	s := d.Stats()
	if s.Freed != 100 {
		t.Fatalf("new objects must all be freed, got %d", s.Freed)
	}
	if s.Pending != 1 {
		t.Fatalf("only the covered object may pend, got %d", s.Pending)
	}
}

func TestClearIsIdempotentAndResetsFastPath(t *testing.T) {
	arena := testArena()
	ins := reclaim.NewInstrument(2)
	d := New(arena, reclaim.Config{MaxThreads: 2, Slots: 3, Instrument: ins})
	h := d.Register()
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	var cell atomic.Uint64
	cell.Store(uint64(ref))

	d.Protect(h, 0, &cell)
	d.Clear(h)
	d.Clear(h) // idempotent
	for i := 0; i < 3; i++ {
		if got := h.Words[i].Load(); got != noneEra {
			t.Fatalf("slot %d not cleared: %d", i, got)
		}
	}
	// After Clear, the next Protect must republish (prevEra was reset).
	ins.Reset()
	d.Protect(h, 0, &cell)
	if s := ins.Snapshot(); s.Stores != 1 {
		t.Fatalf("expected republication after Clear, stores = %d", s.Stores)
	}
}

func TestKAdvanceDelaysClock(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3, WithAdvanceEvery(4))
	h := d.Register()
	for i := 1; i <= 8; i++ {
		ref, _ := arena.Alloc()
		d.OnAlloc(ref)
		d.Retire(h, ref)
		wantEra := uint64(1 + i/4)
		if d.Era() != wantEra {
			t.Fatalf("after %d retires Era = %d, want %d", i, d.Era(), wantEra)
		}
	}
}

func TestKAdvanceOneIsDefaultBehaviour(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3, WithAdvanceEvery(0)) // invalid k ignored
	if d.advanceEvery != 1 {
		t.Fatalf("advanceEvery = %d, want 1", d.advanceEvery)
	}
}

func TestMinMaxModeProtectsRange(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 4, WithMinMax(true))
	if d.Name() != "HE-minmax" {
		t.Fatalf("Name = %q", d.Name())
	}
	reader := d.Register()
	writer := d.Register()

	// Reader protects nodes at eras 2 and 5: publishes min=2, max=5.
	var cells [2]atomic.Uint64
	d.SetEraClock(2)
	r1, _ := arena.Alloc()
	d.OnAlloc(r1)
	cells[0].Store(uint64(r1))
	d.Protect(reader, 0, &cells[0])
	d.SetEraClock(5)
	r2, _ := arena.Alloc()
	d.OnAlloc(r2)
	cells[1].Store(uint64(r2))
	d.Protect(reader, 1, &cells[1])

	if lo, hi := reader.Words[0].Load(), reader.Words[1].Load(); lo != 2 || hi != 5 {
		t.Fatalf("published min/max = %d/%d, want 2/5", lo, hi)
	}

	// An object with lifetime [3,4] (inside the range) must be protected,
	// even though no exact era 3 or 4 was published individually.
	mid, _ := arena.Alloc()
	h := arena.Header(mid)
	h.BirthEra = 3
	d.SetEraClock(4)
	d.Retire(writer, mid)
	if s := d.Stats(); s.Freed != 0 || s.Pending != 1 {
		t.Fatalf("mid-lifetime object must pend under min/max: %+v", s)
	}

	// An object born after the max is reclaimable.
	d.SetEraClock(9)
	late, _ := arena.Alloc()
	d.OnAlloc(late)
	d.Retire(writer, late)
	if s := d.Stats(); s.Freed != 1 {
		t.Fatalf("late object must be freed: %+v", s)
	}

	// An object whose lifetime encloses the whole range must be protected.
	enclosing, _ := arena.Alloc()
	arena.Header(enclosing).BirthEra = 1
	d.Retire(writer, enclosing) // delEra = current clock >= 10 > max
	s := d.Stats()
	if s.Pending != 2 {
		t.Fatalf("enclosing object must pend: %+v", s)
	}

	// Clearing the reader releases everything on the next scan.
	d.Clear(reader)
	d.Scan(writer)
	if s := d.Stats(); s.Pending != 0 {
		t.Fatalf("all pending objects must free after Clear: %+v", s)
	}
}

func TestMinMaxClearPublishesNone(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 4, WithMinMax(true))
	h := d.Register()
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	var cell atomic.Uint64
	cell.Store(uint64(ref))
	d.Protect(h, 0, &cell)
	d.Clear(h)
	if h.Words[0].Load() != noneEra || h.Words[1].Load() != noneEra {
		t.Fatal("min/max slots not cleared")
	}
}

// TestEraClockNearOverflow documents the Appendix-B limitation: the
// implementation is "incapable of handling" clock overflow, relying on the
// 64-bit span (195+ years of continuous increments). We verify the clock is
// a plain 64-bit counter with no wrap handling — behaviour is well-defined
// (monotone increments) right up to the last representable era.
func TestEraClockNearOverflow(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3)
	h := d.Register()
	d.SetEraClock(math.MaxUint64 - 2)
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	if arena.Header(ref).BirthEra != math.MaxUint64-2 {
		t.Fatal("birth stamp near overflow mangled")
	}
	d.Retire(h, ref)
	if d.Era() != math.MaxUint64-1 {
		t.Fatalf("Era = %d, want MaxUint64-1", d.Era())
	}
	if s := d.Stats(); s.Freed != 1 {
		t.Fatalf("retire near overflow must still reclaim: %+v", s)
	}
}

// TestEquation1BoundUnderChurn checks the paper's §3.1 bound: with one
// stalled reader holding era E, the unreclaimed set can never exceed the
// number of objects whose lifetime includes E — new objects never pend.
func TestEquation1BoundUnderChurn(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 4, 3)
	reader := d.Register()
	writer := d.Register()

	// liveAtE objects alive when the reader publishes era E.
	const liveAtE = 10
	refs := make([]mem.Ref, liveAtE)
	for i := range refs {
		refs[i], _ = arena.Alloc()
		d.OnAlloc(refs[i])
	}
	var cell atomic.Uint64
	cell.Store(uint64(refs[0]))
	d.Protect(reader, 0, &cell) // publishes era 1; all liveAtE have BirthEra 1

	// Retire all of them (lifetimes cover era 1) plus heavy churn of new
	// objects; pending must never exceed liveAtE.
	for _, r := range refs {
		d.Retire(writer, r)
	}
	for i := 0; i < 500; i++ {
		r, _ := arena.Alloc()
		d.OnAlloc(r)
		d.Retire(writer, r)
		if p := d.Stats().Pending; p > liveAtE {
			t.Fatalf("pending %d exceeds Equation-1 bound %d", p, liveAtE)
		}
	}
	// PeakPending is sampled between PushRetired and the scan, so the
	// object in flight counts transiently: the bound is liveAtE + 1.
	if s := d.Stats(); s.PeakPending > liveAtE+1 {
		t.Fatalf("peak pending %d exceeds bound %d", s.PeakPending, liveAtE+1)
	}
}

func TestDrainFreesPending(t *testing.T) {
	arena := testArena()
	d := newHE(arena, 2, 3)
	reader := d.Register()
	writer := d.Register()
	ref, _ := arena.Alloc()
	d.OnAlloc(ref)
	var cell atomic.Uint64
	cell.Store(uint64(ref))
	d.Protect(reader, 0, &cell)
	d.Retire(writer, ref)
	if d.Stats().Pending != 1 {
		t.Fatal("setup failed")
	}
	d.Clear(reader)
	d.Drain()
	if s := d.Stats(); s.Pending != 0 {
		t.Fatalf("Drain left pending: %+v", s)
	}
	if arena.Stats().Live != 0 {
		t.Fatal("arena leaked")
	}
}

// TestConcurrentProtectRetireStress hammers a single shared cell with
// concurrent readers and swapping writers over a checked, poisoned arena.
// Any unsafe reclamation surfaces as a generation fault (panic) or poison.
func TestConcurrentProtectRetireStress(t *testing.T) {
	arena := testArena()
	const threads = 8
	d := newHE(arena, threads, 1)
	var cell atomic.Uint64
	seed, _ := arena.Alloc()
	d.OnAlloc(seed)
	arena.Get(seed).val = 42
	cell.Store(uint64(seed))

	iters := 4000
	if testing.Short() {
		iters = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(writer bool) {
			defer wg.Done()
			h := d.Register()
			defer d.Unregister(h)
			for i := 0; i < iters; i++ {
				if writer {
					nref, n := arena.Alloc()
					n.val = 42
					d.OnAlloc(nref)
					old := mem.Ref(cell.Swap(uint64(nref)))
					d.Retire(h, old)
				} else {
					got := d.Protect(h, 0, &cell)
					if v := arena.Get(got).val; v != 42 {
						panic("reader observed poisoned or torn value")
					}
					d.EndOp(h)
				}
			}
			// Writers leave their pending list for Drain.
		}(w%2 == 0)
	}
	wg.Wait()
	d.Drain()
	s := d.Stats()
	if s.Pending != 0 {
		t.Fatalf("pending after drain: %+v", s)
	}
	if f := arena.Stats().Faults; f != 0 {
		t.Fatalf("memory faults detected: %d", f)
	}
}

package repro_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro"
)

func newCell(v uint64) *atomic.Uint64 {
	c := &atomic.Uint64{}
	c.Store(v)
	return c
}

// These tests exercise the public facade exactly as a downstream user
// would: no internal/ imports.

func heFactory(a repro.Allocator, c repro.Config) repro.Domain {
	return repro.NewHazardEras(a, c)
}

func TestPublicListRoundTrip(t *testing.T) {
	l := repro.NewList(heFactory)
	tid := l.Domain().Register()
	defer l.Domain().Unregister(tid)

	if !l.Insert(tid, 1, 10) || !l.Insert(tid, 2, 20) {
		t.Fatal("insert failed")
	}
	if v, ok := l.Get(tid, 2); !ok || v != 20 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !l.Remove(tid, 1) {
		t.Fatal("remove failed")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.Drain()
}

func TestPublicSchemesInterchangeable(t *testing.T) {
	factories := map[string]repro.DomainFactory{
		"HE": heFactory,
		"HE-k8": func(a repro.Allocator, c repro.Config) repro.Domain {
			return repro.NewHazardEras(a, c, repro.WithAdvanceEvery(8))
		},
		"HE-minmax": func(a repro.Allocator, c repro.Config) repro.Domain {
			return repro.NewHazardEras(a, c, repro.WithMinMax(true))
		},
		"HP":   func(a repro.Allocator, c repro.Config) repro.Domain { return repro.NewHazardPointers(a, c) },
		"EBR":  repro.NewEBR,
		"URCU": repro.NewURCU,
		"RC":   repro.NewRefCount,
		"NONE": repro.NewLeak,
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			m := repro.NewMap(mk)
			tid := m.Domain().Register()
			defer m.Domain().Unregister(tid)
			for k := uint64(0); k < 100; k++ {
				m.Insert(tid, k, k*2)
			}
			for k := uint64(0); k < 100; k += 2 {
				m.Remove(tid, k)
			}
			if m.Len() != 50 {
				t.Fatalf("Len = %d", m.Len())
			}
			m.Drain()
		})
	}
}

func TestPublicQueueStackTree(t *testing.T) {
	q := repro.NewQueue(heFactory)
	tid := q.Domain().Register()
	q.Enqueue(tid, 7)
	if v, ok := q.Dequeue(tid); !ok || v != 7 {
		t.Fatalf("queue: %d,%v", v, ok)
	}
	q.Drain()

	s := repro.NewStack(heFactory)
	tid = s.Domain().Register()
	s.Push(tid, 9)
	if v, ok := s.Pop(tid); !ok || v != 9 {
		t.Fatalf("stack: %d,%v", v, ok)
	}
	s.Drain()

	tr := repro.NewTree(heFactory)
	tid = tr.Domain().Register()
	tr.Insert(tid, 3, 33)
	if v, ok := tr.Get(tid, 3); !ok || v != 33 {
		t.Fatalf("tree: %d,%v", v, ok)
	}
	tr.Drain()
}

func TestPublicArenaDirectUse(t *testing.T) {
	type node struct{ v uint64 }
	arena := repro.NewArena[node](
		repro.Checked[node](true),
		repro.WithPoison[node](func(n *node) { n.v = 0xDEAD }),
	)
	ref, n := arena.Alloc()
	n.v = 1
	if ref == repro.NilRef {
		t.Fatal("nil ref from Alloc")
	}
	dom := repro.NewHazardEras(arena, repro.Config{MaxThreads: 2, Slots: 1})
	dom.OnAlloc(ref)
	tid := dom.Register()
	dom.Retire(tid, ref)
	if st := dom.Stats(); st.Freed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicConcurrentSmoke(t *testing.T) {
	l := repro.NewList(heFactory)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := l.Domain().Register()
			defer l.Domain().Unregister(tid)
			for i := 0; i < 500; i++ {
				k := uint64((w*17 + i) % 64)
				switch i % 3 {
				case 0:
					l.Insert(tid, k, k)
				case 1:
					l.Contains(tid, k)
				case 2:
					l.Remove(tid, k)
				}
			}
		}(w)
	}
	wg.Wait()
	l.Drain()
}

func TestPublicInstrument(t *testing.T) {
	ins := repro.NewInstrument(2)
	type node struct{ v uint64 }
	arena := repro.NewArena[node]()
	dom := repro.NewHazardEras(arena, repro.Config{MaxThreads: 2, Slots: 1, Instrument: ins})
	tid := dom.Register()
	ref, _ := arena.Alloc()
	dom.OnAlloc(ref)
	cell := newCell(uint64(ref))
	for i := 0; i < 10; i++ {
		dom.Protect(tid, 0, cell)
	}
	if s := ins.Snapshot(); s.Visits != 10 {
		t.Fatalf("snapshot: %+v", s)
	}
}

func TestPublicSkipListRange(t *testing.T) {
	s := repro.NewSkipList(heFactory)
	tid := s.Domain().Register()
	defer s.Domain().Unregister(tid)
	for k := uint64(0); k < 20; k++ {
		s.Insert(tid, k, k*2)
	}
	var got []uint64
	n := s.Range(tid, 5, 15, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if n != 10 || len(got) != 10 || got[0] != 5 || got[9] != 14 {
		t.Fatalf("Range = %d, %v", n, got)
	}
	if v, ok := s.Get(tid, 7); !ok || v != 14 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	s.Drain()
}

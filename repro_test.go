package repro_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro"
)

func newCell(v uint64) *atomic.Uint64 {
	c := &atomic.Uint64{}
	c.Store(v)
	return c
}

// These tests exercise the public facade exactly as a downstream user
// would: no internal/ imports.

func heFactory(a repro.Allocator, c repro.Config) repro.Domain {
	return repro.NewHazardEras(a, c)
}

func TestPublicListRoundTrip(t *testing.T) {
	l := repro.NewList(heFactory)
	h := l.Register()
	defer h.Unregister()

	if !l.Insert(h, 1, 10) || !l.Insert(h, 2, 20) {
		t.Fatal("insert failed")
	}
	if v, ok := l.Get(h, 2); !ok || v != 20 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !l.Remove(h, 1) {
		t.Fatal("remove failed")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.Drain()
}

func TestPublicSchemesInterchangeable(t *testing.T) {
	factories := map[string]repro.DomainFactory{
		"HE": heFactory,
		"HE-k8": func(a repro.Allocator, c repro.Config) repro.Domain {
			return repro.NewHazardEras(a, c, repro.WithAdvanceEvery(8))
		},
		"HE-minmax": func(a repro.Allocator, c repro.Config) repro.Domain {
			return repro.NewHazardEras(a, c, repro.WithMinMax(true))
		},
		"HP":   func(a repro.Allocator, c repro.Config) repro.Domain { return repro.NewHazardPointers(a, c) },
		"EBR":  repro.NewEBR,
		"URCU": repro.NewURCU,
		"RC":   repro.NewRefCount,
		"NONE": repro.NewLeak,
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			m := repro.NewMap(mk)
			h := m.Register()
			defer h.Unregister()
			for k := uint64(0); k < 100; k++ {
				m.Insert(h, k, k*2)
			}
			for k := uint64(0); k < 100; k += 2 {
				m.Remove(h, k)
			}
			if m.Len() != 50 {
				t.Fatalf("Len = %d", m.Len())
			}
			m.Drain()
		})
	}
}

func TestPublicQueueStackTree(t *testing.T) {
	q := repro.NewQueue(heFactory)
	h := q.Register()
	q.Enqueue(h, 7)
	if v, ok := q.Dequeue(h); !ok || v != 7 {
		t.Fatalf("queue: %d,%v", v, ok)
	}
	q.Drain()

	s := repro.NewStack(heFactory)
	h = s.Register()
	s.Push(h, 9)
	if v, ok := s.Pop(h); !ok || v != 9 {
		t.Fatalf("stack: %d,%v", v, ok)
	}
	s.Drain()

	tr := repro.NewTree(heFactory)
	h = tr.Register()
	tr.Insert(h, 3, 33)
	if v, ok := tr.Get(h, 3); !ok || v != 33 {
		t.Fatalf("tree: %d,%v", v, ok)
	}
	tr.Drain()
}

func TestPublicArenaDirectUse(t *testing.T) {
	type node struct{ v uint64 }
	arena := repro.NewArena[node](
		repro.Checked[node](true),
		repro.WithPoison[node](func(n *node) { n.v = 0xDEAD }),
	)
	ref, n := arena.Alloc()
	n.v = 1
	if ref == repro.NilRef {
		t.Fatal("nil ref from Alloc")
	}
	dom := repro.NewHazardEras(arena, repro.Config{MaxThreads: 2, Slots: 1})
	dom.OnAlloc(ref)
	h := dom.Register()
	dom.Retire(h, ref)
	if st := dom.Stats(); st.Freed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicConcurrentSmoke(t *testing.T) {
	l := repro.NewList(heFactory)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := l.Register()
			defer h.Unregister()
			for i := 0; i < 500; i++ {
				k := uint64((w*17 + i) % 64)
				switch i % 3 {
				case 0:
					l.Insert(h, k, k)
				case 1:
					l.Contains(h, k)
				case 2:
					l.Remove(h, k)
				}
			}
		}(w)
	}
	wg.Wait()
	l.Drain()
}

func TestPublicInstrument(t *testing.T) {
	ins := repro.NewInstrument(2)
	type node struct{ v uint64 }
	arena := repro.NewArena[node]()
	dom := repro.NewHazardEras(arena, repro.Config{MaxThreads: 2, Slots: 1, Instrument: ins})
	h := dom.Register()
	ref, _ := arena.Alloc()
	dom.OnAlloc(ref)
	cell := newCell(uint64(ref))
	for i := 0; i < 10; i++ {
		dom.Protect(h, 0, cell)
	}
	if s := ins.Snapshot(); s.Visits != 10 {
		t.Fatalf("snapshot: %+v", s)
	}
}

func TestPublicSkipListRange(t *testing.T) {
	s := repro.NewSkipList(heFactory)
	h := s.Register()
	defer h.Unregister()
	for k := uint64(0); k < 20; k++ {
		s.Insert(h, k, k*2)
	}
	var got []uint64
	n := s.Range(h, 5, 15, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if n != 10 || len(got) != 10 || got[0] != 5 || got[9] != 14 {
		t.Fatalf("Range = %d, %v", n, got)
	}
	if v, ok := s.Get(h, 7); !ok || v != 14 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	s.Drain()
}

// Quickstart: a lock-free Harris-Michael list with Hazard Eras reclamation,
// written entirely against the public smr API.
//
// Run with: go run ./examples/quickstart
//
// The flow is the one the paper prescribes: construct a domain over the
// node arena (HazardEras(maxHEs, maxThreads)), open a Guard per
// participating goroutine, and let the structure call get_protected/clear/
// retire/getEra internally. Switching smr.HE to smr.HP (or EBR/URCU/IBR)
// swaps the reclamation scheme without touching any data-structure code —
// the paper's "drop-in replacement" claim.
package main

import (
	"fmt"

	"repro/internal/list"
	"repro/smr"
)

func main() {
	// A Harris-Michael set whose nodes are reclaimed with Hazard Eras.
	l := list.New(smr.HE.Factory(), list.WithMaxThreads(8))

	// Every participating goroutine opens a Guard — its reclamation
	// session (the role the paper's tid plays, with the per-thread state
	// cached inside it).
	g := l.Register()
	defer g.Unregister()

	for k := uint64(1); k <= 5; k++ {
		l.Insert(g, k, k*100)
	}
	fmt.Println("inserted 1..5, list length:", l.Len())

	if v, ok := l.Get(g, 3); ok {
		fmt.Println("Get(3) =", v)
	}

	// Remove + re-insert churns nodes through retire(): the old node is
	// reclaimed as soon as no published era covers its lifetime.
	for i := 0; i < 1000; i++ {
		l.Remove(g, 3)
		l.Insert(g, 3, 300)
	}

	s := l.SMR().Stats()
	fmt.Printf("after churn: retired=%d freed=%d pending=%d eraClock=%d\n",
		s.Retired, s.Freed, s.Pending, s.EraClock)
	fmt.Printf("arena: allocs=%d frees=%d live=%d (recycled %d slots)\n",
		l.Arena().Stats().Allocs, l.Arena().Stats().Frees,
		l.Arena().Stats().Live, l.Arena().Stats().Reuses)

	l.Drain()
	fmt.Println("after drain, live slots:", l.Arena().Stats().Live)
}

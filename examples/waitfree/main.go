// Wait-free end to end: the Kogan-Petrank wait-free queue with Hazard Eras
// reclamation — the combination the paper argues for in §3.2 and §C
// ("there is little benefit in designing a wait-free queue and then use a
// quiescence-based memory reclamation ... knowing that such a technique is
// blocking for reclaimers").
//
// Run with: go run ./examples/waitfree
//
// Part 1 demonstrates helping: a thread announces an enqueue and then goes
// to sleep without taking a single further step; another thread's operation
// completes it. Part 2 compares the wait-free queue against the lock-free
// Michael-Scott queue under the same reclamation scheme — the throughput
// cost of the wait-freedom guarantee.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/queue"
	"repro/internal/wfqueue"
	"repro/smr"
)

func helpedCompletion() {
	q := wfqueue.New(wfqueue.DomainFactory(bench.HE().Make), wfqueue.WithMaxThreads(4))
	sleeper := q.Register()
	helper := q.Register()
	defer q.Unregister(sleeper)
	defer q.Unregister(helper)

	// The sleeper announces an enqueue of 42 via Announce (the first half
	// of Enqueue) and stalls forever before helping itself.
	q.Announce(sleeper, 42)

	// The helper's own operation must first complete every announced
	// operation with an older phase — including the sleeper's.
	q.Enqueue(helper, 7)

	v1, _ := q.Dequeue(helper)
	v2, _ := q.Dequeue(helper)
	fmt.Printf("part 1: sleeper's 42 completed by the helper; dequeue order: %d, %d\n", v1, v2)
}

const workers = 4
const dur = 500 * time.Millisecond

// run drives either queue through its session API; H is *smr.Guard for
// the Michael-Scott queue and *wfqueue.Handle (two domain sessions plus an
// announcement cell) for the wait-free one.
func run[H any](enq func(H, uint64), deq func(H) (uint64, bool),
	register func() H, unregister func(H)) float64 {
	var stop atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(producer bool) {
			defer wg.Done()
			h := register()
			defer unregister(h)
			var local int64
			for !stop.Load() {
				if producer {
					enq(h, uint64(local))
				} else {
					deq(h)
				}
				local++
			}
			ops.Add(local)
		}(w%2 == 0)
	}
	start := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return float64(ops.Load()) / time.Since(start).Seconds() / 1e6
}

func throughput() {
	lf := queue.New(queue.DomainFactory(bench.HE().Make), queue.WithMaxThreads(workers+1))
	lfMops := run(lf.Enqueue, lf.Dequeue, lf.Register, (*smr.Guard).Unregister)
	lf.Drain()

	wf := wfqueue.New(wfqueue.DomainFactory(bench.HE().Make), wfqueue.WithMaxThreads(workers+1))
	wfMops := run(wf.Enqueue, wf.Dequeue, wf.Register, wf.Unregister)
	wf.Drain()

	fmt.Printf("part 2: %d workers, %v, Hazard Eras reclamation\n", workers, dur)
	fmt.Printf("  lock-free Michael-Scott queue: %7.3f Mops/s (lock-free: someone always progresses)\n", lfMops)
	fmt.Printf("  wait-free Kogan-Petrank queue: %7.3f Mops/s (wait-free: EVERYONE progresses in bounded steps)\n", wfMops)
	fmt.Println("  the gap is the price of the universal progress guarantee (helping + phases);")
	fmt.Println("  the reclamation itself stays non-blocking in both, as the paper requires.")
}

func main() {
	helpedCompletion()
	throughput()
}

// Range scans over a concurrent skip list: an ordered index (think: a time-
// series window, or a key range in a storage engine) that is scanned by
// readers while a writer churns insertions and deletions — every scanned
// node protected through Hazard Eras, every replaced node reclaimed.
//
// Run with: go run ./examples/rangescan
//
// This exercises the part of the reclamation story that point lookups
// don't: a scan holds protections across MANY nodes for a long time, and a
// stalled scan is exactly the "sleepy reader" of the paper's Appendix A —
// under HE it pins only the nodes whose lifetimes cover its eras, while new
// churn keeps being reclaimed.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

const (
	keys     = 10_000
	scanners = 3
	duration = 600 * time.Millisecond
)

func heFactory(a repro.Allocator, c repro.Config) repro.Domain {
	return repro.NewHazardEras(a, c)
}

func main() {
	index := repro.NewSkipList(heFactory)
	setup := index.Register()
	for k := uint64(0); k < keys; k++ {
		index.Insert(setup, k, k*10)
	}
	setup.Unregister()

	var stop atomic.Bool
	var scans, scanned, churned atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < scanners; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := index.Register()
			defer h.Unregister()
			rngState := seed
			for !stop.Load() {
				rngState = rngState*6364136223846793005 + 1442695040888963407
				from := rngState % keys
				n := index.Range(h, from, from+200, func(k, v uint64) bool {
					if v != k*10 {
						panic(fmt.Sprintf("corrupt value %d at key %d", v, k))
					}
					return true
				})
				scanned.Add(int64(n))
				scans.Add(1)
			}
		}(uint64(w) + 1)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		h := index.Register()
		defer h.Unregister()
		rngState := uint64(99)
		for !stop.Load() {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			k := rngState % keys
			if index.Remove(h, k) {
				index.Insert(h, k, k*10)
				churned.Add(1)
			}
		}
	}()

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	st := index.Domain().Stats()
	fmt.Printf("index of %d keys, %d scanners + 1 churner, %v\n", keys, scanners, duration)
	fmt.Printf("  %d range scans visited %d elements (every node protected)\n", scans.Load(), scanned.Load())
	fmt.Printf("  %d nodes churned through retire(): freed=%d pending=%d peak=%d\n",
		churned.Load(), st.Freed, st.Pending, st.PeakPending)
	index.Drain()
	fmt.Println("  drained; index empty, nothing leaked")
}

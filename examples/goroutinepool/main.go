// Goroutine pools and session handles: many more goroutines than the
// registry's initial capacity, with two ways to give each one a session.
//
// Run with: go run ./examples/goroutinepool
//
// The paper's C++ API sizes everything at construction —
// HazardEras(maxHEs, maxThreads) — and a thread beyond maxThreads is a
// hard error. That model fits pinned-thread benchmarks but not Go servers,
// where goroutines are cheap, short-lived and unbounded. This example
// shows the session-handle model that replaces it:
//
//  1. Register never fails: the registry starts at the configured initial
//     capacity and grows by publishing new slot blocks on demand, so 64
//     goroutines holding sessions at once against a 4-session registry
//     just works. Scanners walk whatever chain is published; a grown
//     block is visible to every scan that could free something its
//     sessions protect.
//
//  2. Acquire/Release pools live sessions: a goroutine that borrows a
//     handle for one request and returns it afterwards skips the registry
//     mutex, reuses a warm handle (cached counter stripes, scratch
//     buffers) and keeps the registry no larger than the borrowing
//     high-water mark — the right call-pattern for request handlers and
//     worker pools (~6.5x cheaper than Register/Unregister per
//     BENCH_handles.json).
package main

import (
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/hashmap"
	"repro/internal/list"
)

const (
	initialCapacity = 4
	goroutines      = 64
	opsPerGoroutine = 200
)

func newMap() *hashmap.Map {
	return hashmap.New(list.DomainFactory(bench.HE().Make),
		hashmap.WithMaxThreads(initialCapacity), hashmap.WithBuckets(16))
}

// capacity reads the registry's slot capacity; every scheme domain embeds
// reclaim.Base, which provides it.
func capacity(dom any) int { return dom.(interface{ Capacity() int }).Capacity() }

// part1 holds 64 registered sessions OPEN at the same time against an
// initial capacity of 4: the old fixed registry panicked here; the grown
// slot-block chain absorbs it.
func part1() {
	m := newMap()
	dom := m.Domain()

	var ready, proceed, done sync.WaitGroup
	ready.Add(goroutines)
	proceed.Add(1)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			s := m.Register() // 4 slots pre-exist; the rest are grown
			defer s.Unregister()
			ready.Done()
			proceed.Wait() // every session is simultaneously live here
			base := uint64(g) * opsPerGoroutine
			for i := uint64(0); i < opsPerGoroutine; i++ {
				m.Insert(s, base+i, i)
				m.Remove(s, base+i)
			}
		}(g)
	}
	ready.Wait()
	grownTo := capacity(dom)
	proceed.Done()
	done.Wait()

	s := dom.Stats()
	fmt.Println("part 1: 64 concurrent Register() against initial capacity 4")
	fmt.Printf("  registry grew %d -> %d while all sessions were live; no registration failed\n",
		initialCapacity, grownTo)
	fmt.Printf("  retired=%d freed=%d pending=%d (grown blocks scan like the first one)\n\n",
		s.Retired, s.Freed, s.Pending)
	m.Drain()
}

// part2 churns the same 64 goroutines through Acquire/Release: handles are
// borrowed, used and returned, so the registry only reflects how many were
// ever borrowed AT ONCE, not how many goroutines passed through.
func part2() {
	m := newMap()
	dom := m.Domain()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * opsPerGoroutine
			for i := uint64(0); i < opsPerGoroutine; i++ {
				s := m.Acquire() // pooled: no registry mutex on the warm path
				m.Insert(s, base+i, i)
				m.Remove(s, base+i)
				s.Release()
			}
		}(g)
	}
	wg.Wait()

	s := dom.Stats()
	fmt.Println("part 2: 64 goroutines x 200 borrow/return cycles through Acquire/Release")
	fmt.Printf("  registry capacity settled at %d (the borrowing high-water mark, not %d sessions)\n",
		capacity(dom), goroutines*opsPerGoroutine)
	fmt.Printf("  retired=%d freed=%d pending=%d\n", s.Retired, s.Freed, s.Pending)
	m.Drain()
}

func main() {
	part1()
	part2()
}

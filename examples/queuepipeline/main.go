// Queue pipeline: Michael-Scott queues with Hazard Eras as the backbone of
// a multi-stage processing pipeline — the paper's own motivating use case
// (its authors built a wait-free queue, reference [26], on this very
// reclamation API because quiescence-based schemes are "blocking ... for
// dequeuing operations").
//
// Run with: go run ./examples/queuepipeline
//
// Stage 1 producers enqueue work items; stage 2 workers transform them and
// pass them on; stage 3 aggregates. Every dequeue retires a node, so the
// queues exercise reclamation continuously, and the final accounting shows
// nothing was lost, duplicated, or leaked.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/queue"
)

const (
	producers = 2
	workers   = 2
	items     = 20_000
)

func main() {
	mk := queue.DomainFactory(bench.HE().Make)
	stage1 := queue.New(mk, queue.WithMaxThreads(producers+workers+2))
	stage2 := queue.New(mk, queue.WithMaxThreads(workers+2))

	var wg sync.WaitGroup

	// Stage 1: producers enqueue raw items.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := stage1.Register()
			defer h.Unregister()
			for i := 0; i < items/producers; i++ {
				stage1.Enqueue(h, uint64(p*items+i))
			}
		}(p)
	}

	// Stage 2: workers square each item and forward it.
	var forwarded atomic.Int64
	var stage2Wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		stage2Wg.Add(1)
		go func() {
			defer stage2Wg.Done()
			in := stage1.Register()
			out := stage2.Register()
			defer in.Unregister()
			defer out.Unregister()
			for forwarded.Load() < items {
				v, ok := stage1.Dequeue(in)
				if !ok {
					runtime.Gosched()
					continue
				}
				stage2.Enqueue(out, v*2+1)
				forwarded.Add(1)
			}
		}()
	}

	// Stage 3: aggregate.
	var sum, count uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := stage2.Register()
		defer h.Unregister()
		for count < items {
			v, ok := stage2.Dequeue(h)
			if !ok {
				runtime.Gosched()
				continue
			}
			sum += v
			count++
		}
	}()

	wg.Wait()
	stage2Wg.Wait()

	fmt.Printf("pipeline processed %d items, checksum %d\n", count, sum)
	for i, q := range []*queue.Queue{stage1, stage2} {
		s := q.Domain().Stats()
		fmt.Printf("stage %d queue: retired=%d freed=%d pending=%d\n", i+1, s.Retired, s.Freed, s.Pending)
		q.Drain()
		if live := q.Arena().Stats().Live; live != 0 {
			fmt.Printf("stage %d LEAKED %d nodes!\n", i+1, live)
		}
	}
	fmt.Println("all nodes reclaimed — lock-free progress for producers AND consumers")
}

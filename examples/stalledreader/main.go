// Stalled reader: the paper's Appendix-A contrast, live — and the same
// runaway surfaced as a health-monitor alert instead of a plot.
//
// Run with: go run ./examples/stalledreader
//
// One reader parks inside a read-side critical section (the paper's
// "sleepy" reader D) while a writer churns remove+reinsert updates. Under
// epoch-based reclamation nothing can ever be freed again and the limbo
// list grows with every update; under Hazard Eras only the nodes that were
// alive when the reader stalled stay pinned — everything born later is
// reclaimed, keeping memory bounded (Equation 1).
//
// The run is instrumented end to end: allocations are lifecycle-traced
// (1 in 8 sampled) and the online health monitor evaluates its invariants
// after each churn chunk. While the reader is parked the era-stall invariant
// breaches (one session pins an era beyond the stall threshold — the
// Figure-4 signature) and the monitor RAISES an alert; the run then wakes
// the reader, keeps churning, and the same invariant goes clean, so the
// monitor CLEARS it. Both transitions print as ALERT lines. The
// unreclaimed/freed table is captured at the end of the parked phase, so
// it still shows the Appendix-A contrast.
//
// With -sample the run also records the pending-over-time curve, the
// sampled per-ref lifecycle spans, and the alert transitions as JSON
// lines:
//
//	go run ./examples/stalledreader -sample pending.jsonl
//	go run ./cmd/heanalyze pending.jsonl
//
// heanalyze renders the reclamation-age histogram and the longest-pinned
// table — which attributes the pinned refs to the stalled session's era.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/list"
	"repro/internal/obs"
)

const (
	listSize   = 100
	churnOps   = 24_000
	stallTicks = 3 // monitor evaluations while the reader is parked
	clearTicks = 3 // monitor evaluations after the reader wakes

	// 1-in-2^3 lifecycle sampling by default: cheap enough to leave on for
	// the whole example while still tagging ~1/8 of the pinned survivors,
	// so the longest-pinned table has entries to attribute to the sleepy
	// reader. (Each churn chunk must retire more than the obs stall
	// threshold of 1024 eras for the stalled gauge to trip; 24k ops over 6
	// chunks does.)
	traceShift = 3
)

// tick captures a snapshot (when sampling) and runs one monitor
// evaluation. Driving Step from the churn loop instead of the wall-clock
// ticker makes the raise/clear sequence deterministic: with RaiseTicks=2
// the era-stall alert raises on the second parked-phase tick and clears on
// the second woken-phase tick.
func tick(mon *obs.Monitor, smp *obs.Sampler, hub *obs.Hub) {
	if smp != nil {
		smp.Sample(hub.Domains())
	}
	mon.Step()
}

func churnWithStalledReader(s bench.Scheme, hub *obs.Hub, smp *obs.Sampler, mon *obs.Monitor) (pending, freed int64) {
	l := list.New(list.DomainFactory(s.Make), list.WithMaxThreads(4))
	dom := l.Domain()

	setup := l.Register()
	for k := uint64(0); k < listSize; k++ {
		l.Insert(setup, k, k)
	}
	setup.Unregister()

	// The sleepy reader: pinned mid-operation until released.
	release := make(chan struct{})
	done := bench.StalledReader(l, release)

	writer := l.Register()
	defer writer.Unregister()
	rng := bench.NewSplitMix64(7)
	churn := func(ops int) {
		for i := 0; i < ops; i++ {
			k := rng.Intn(listSize)
			if l.Remove(writer, k) {
				l.Insert(writer, k, k)
			}
		}
	}
	chunk := churnOps / (stallTicks + clearTicks)

	// Phase 1 — reader parked: the era clock races ahead of the parked
	// session's published era, the stalled-session gauge goes nonzero, and
	// the monitor raises era-stall.
	for i := 0; i < stallTicks; i++ {
		churn(chunk)
		tick(mon, smp, hub)
	}
	st := dom.Stats()
	pending, freed = st.Pending, st.Freed

	// Phase 2 — wake the reader and keep churning: the stalled gauge drops
	// to zero and the monitor clears the alert after ClearTicks clean ticks.
	close(release)
	<-done
	for i := 0; i < clearTicks; i++ {
		churn(chunk)
		tick(mon, smp, hub)
	}
	return pending, freed
}

func main() {
	samplePath := flag.String("sample", "", "record obs snapshots, lifecycle spans and alerts as JSON lines to this file (analyze with cmd/heanalyze)")
	every := flag.Duration("sample-every", 25*time.Millisecond, "sampling interval for -sample")
	shift := flag.Uint("trace", traceShift, "lifecycle sampling shift: trace 1 in 2^N allocations (larger = smaller -sample files)")
	flag.Parse()

	hub := obs.NewHub()
	bench.SetObsHub(hub)
	bench.SetObsTrace(obs.TraceConfig{Enabled: true, SampleShift: *shift})
	defer hub.Close()

	var smp *obs.Sampler
	if *samplePath != "" {
		var err error
		smp, err = obs.StartFileSampler(*samplePath, *every, hub.Domains)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		hub.SetSampler(smp)
	}

	mon := obs.NewMonitor(obs.MonitorConfig{RaiseTicks: 2, ClearTicks: 2}, hub.Domains)
	mon.SetOnAlert(func(a obs.Alert) {
		fmt.Printf("  ALERT %-5s %-12s %-16s value=%d threshold=%d — %s\n",
			a.State, a.Scheme, a.Invariant, a.Value, a.Threshold, a.Detail)
		if smp != nil {
			smp.WriteAlert(a)
		}
	})
	hub.SetMonitor(mon)
	// Deliberately not Started: churnWithStalledReader drives mon.Step()
	// aligned with its churn chunks, so the transitions are deterministic.

	fmt.Printf("list of %d nodes, %d churn updates, one reader asleep mid-traversal\n", listSize, churnOps)
	fmt.Printf("(node table below is captured while the reader is still parked)\n\n")
	fmt.Printf("%-12s %18s %12s\n", "scheme", "unreclaimed nodes", "nodes freed")
	for _, s := range []bench.Scheme{
		bench.HE(), bench.HP(), bench.WFE(),
		bench.Hyaline(), bench.HyalineNonRobust(), bench.EBR(),
	} {
		pending, freed := churnWithStalledReader(s, hub, smp, mon)
		fmt.Printf("%-12s %18d %12d\n", s.Name, pending, freed)
	}

	fmt.Println("\nhealth monitor era-stall summary:")
	for _, st := range mon.Status() {
		if st.Invariant != "era-stall" || st.Raises == 0 {
			continue
		}
		fmt.Printf("  %-12s raised %d, cleared %d, active now: %v\n",
			st.Scheme, st.Raises, st.Clears, st.Active)
	}

	if *samplePath != "" {
		fmt.Printf("\nsnapshots, lifecycle spans and alerts written to %s (JSON lines;\n", *samplePath)
		fmt.Println("plot pending vs t_ms grouped by scheme for the Figure-4 curve, or run")
		fmt.Println("`go run ./cmd/heanalyze` on it for per-ref timelines and the pinned table).")
	}
	fmt.Println("\nEBR frees nothing while the reader sleeps: the reader pins its epoch and")
	fmt.Println("the limbo list grows with churn (unbounded) — and non-robust hyaline, which")
	fmt.Println("hands every batch to every active session, inherits exactly that curve.")
	fmt.Println("HE, HP, WFE and hyaline-1r keep reclaiming: their pending sets stay")
	fmt.Println("bounded by the nodes alive when the reader stalled (Equation 1; the")
	fmt.Println("birth-era filter plays that role in robust Hyaline).")
	fmt.Println("(URCU is worse still: its synchronize_rcu would BLOCK the writer forever.)")
	fmt.Println("The era-stall alerts above are the same contrast, online: the eras schemes")
	fmt.Println("raise while the reader sleeps and clear once it wakes.")
}

// Stalled reader: the paper's Appendix-A contrast, live.
//
// Run with: go run ./examples/stalledreader
//
// One reader parks inside a read-side critical section (the paper's
// "sleepy" reader D) while a writer churns remove+reinsert updates. Under
// epoch-based reclamation nothing can ever be freed again and the limbo
// list grows with every update; under Hazard Eras only the nodes that were
// alive when the reader stalled stay pinned — everything born later is
// reclaimed, keeping memory bounded (Equation 1).
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/list"
)

const (
	listSize = 100
	churnOps = 50_000
)

func churnWithStalledReader(s bench.Scheme) (pending, freed int64) {
	l := list.New(list.DomainFactory(s.Make), list.WithMaxThreads(4))
	dom := l.Domain()

	setup := dom.Register()
	for k := uint64(0); k < listSize; k++ {
		l.Insert(setup, k, k)
	}
	dom.Unregister(setup)

	// The sleepy reader: pinned mid-operation, never finishes.
	release := make(chan struct{})
	bench.StalledReader(l, release)
	defer close(release)

	writer := dom.Register()
	defer dom.Unregister(writer)
	rng := bench.NewSplitMix64(7)
	for i := 0; i < churnOps; i++ {
		k := rng.Intn(listSize)
		if l.Remove(writer, k) {
			l.Insert(writer, k, k)
		}
	}
	st := dom.Stats()
	return st.Pending, st.Freed
}

func main() {
	fmt.Printf("list of %d nodes, %d churn updates, one reader asleep mid-traversal\n\n", listSize, churnOps)
	fmt.Printf("%-8s %18s %12s\n", "scheme", "unreclaimed nodes", "nodes freed")
	for _, s := range []bench.Scheme{bench.HE(), bench.HP(), bench.EBR()} {
		pending, freed := churnWithStalledReader(s)
		fmt.Printf("%-8s %18d %12d\n", s.Name, pending, freed)
	}
	fmt.Println("\nEBR frees nothing: the sleepy reader pins its epoch forever and the")
	fmt.Println("limbo list grows with churn (unbounded). HE and HP keep reclaiming;")
	fmt.Println("HE's pending set is bounded by the nodes alive when the reader stalled.")
	fmt.Println("(URCU is worse still: its synchronize_rcu would BLOCK the writer forever.)")
}

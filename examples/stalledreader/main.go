// Stalled reader: the paper's Appendix-A contrast, live.
//
// Run with: go run ./examples/stalledreader
//
// One reader parks inside a read-side critical section (the paper's
// "sleepy" reader D) while a writer churns remove+reinsert updates. Under
// epoch-based reclamation nothing can ever be freed again and the limbo
// list grows with every update; under Hazard Eras only the nodes that were
// alive when the reader stalled stay pinned — everything born later is
// reclaimed, keeping memory bounded (Equation 1).
//
// With -sample the run records the pending-over-time curve through the
// observability layer:
//
//	go run ./examples/stalledreader -sample pending.jsonl
//
// Each JSON line is an obs.DomainSnapshot; plotting pending against t_ms
// grouped by scheme reproduces the shape of the paper's Figure 4 memory
// panels — EBR's curve climbs without bound while HE's flattens.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/list"
	"repro/internal/obs"
)

const (
	listSize = 100
	churnOps = 50_000
)

func churnWithStalledReader(s bench.Scheme, smp *obs.Sampler, hub *obs.Hub) (pending, freed int64) {
	l := list.New(list.DomainFactory(s.Make), list.WithMaxThreads(4))
	dom := l.Domain()

	setup := l.Register()
	for k := uint64(0); k < listSize; k++ {
		l.Insert(setup, k, k)
	}
	setup.Unregister()

	// The sleepy reader: pinned mid-operation, never finishes.
	release := make(chan struct{})
	bench.StalledReader(l, release)
	defer close(release)

	writer := l.Register()
	defer writer.Unregister()
	rng := bench.NewSplitMix64(7)
	for i := 0; i < churnOps; i++ {
		k := rng.Intn(listSize)
		if l.Remove(writer, k) {
			l.Insert(writer, k, k)
		}
	}
	if smp != nil {
		smp.Sample(hub.Domains()) // capture the final state of this scheme's curve
	}
	st := dom.Stats()
	return st.Pending, st.Freed
}

func main() {
	samplePath := flag.String("sample", "", "record obs.DomainSnapshot JSON lines (the Figure-4 pending-over-time curve) to this file")
	every := flag.Duration("sample-every", 5*time.Millisecond, "sampling interval for -sample")
	flag.Parse()

	var (
		hub *obs.Hub
		smp *obs.Sampler
	)
	if *samplePath != "" {
		hub = obs.NewHub()
		bench.SetObsHub(hub)
		var err error
		smp, err = obs.StartFileSampler(*samplePath, *every, hub.Domains)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer smp.Stop()
	}

	fmt.Printf("list of %d nodes, %d churn updates, one reader asleep mid-traversal\n\n", listSize, churnOps)
	fmt.Printf("%-12s %18s %12s\n", "scheme", "unreclaimed nodes", "nodes freed")
	for _, s := range []bench.Scheme{
		bench.HE(), bench.HP(), bench.WFE(),
		bench.Hyaline(), bench.HyalineNonRobust(), bench.EBR(),
	} {
		pending, freed := churnWithStalledReader(s, smp, hub)
		fmt.Printf("%-12s %18d %12d\n", s.Name, pending, freed)
	}
	if *samplePath != "" {
		fmt.Printf("\npending-over-time curve written to %s (JSON lines, one obs snapshot\n", *samplePath)
		fmt.Println("per scheme per tick; plot pending vs t_ms grouped by scheme).")
	}
	fmt.Println("\nEBR frees nothing: the sleepy reader pins its epoch forever and the")
	fmt.Println("limbo list grows with churn (unbounded) — and non-robust hyaline, which")
	fmt.Println("hands every batch to every active session, inherits exactly that curve.")
	fmt.Println("HE, HP, WFE and hyaline-1r keep reclaiming: their pending sets stay")
	fmt.Println("bounded by the nodes alive when the reader stalled (Equation 1; the")
	fmt.Println("birth-era filter plays that role in robust Hyaline).")
	fmt.Println("(URCU is worse still: its synchronize_rcu would BLOCK the writer forever.)")
}

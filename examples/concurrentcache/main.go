// Concurrent cache: the lock-free hash map under reader-heavy load — the
// "high throughput for readers" scenario the paper's introduction motivates
// (think: a routing table or session cache read on every request, updated
// occasionally).
//
// Run with: go run ./examples/concurrentcache
//
// The same cache code runs under several reclamation schemes; the printed
// throughputs show the paper's trade-off triangle: URCU fastest for readers
// but blocking for reclaimers, HP non-blocking but paying a store per node,
// HE non-blocking with cheap reads — PROVIDED the era clock does not advance
// on every single retire. A dedicated refresher thread churns continuously
// here, so plain HE republishes eras mid-traversal almost every operation;
// the §3.4 k-advance option (HE-k16: advance the clock every 16th retire)
// restores the fast path at the cost of ~16x more pending nodes, which
// Equation 1 still bounds.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/hashmap"
	"repro/internal/list"
)

const (
	entries  = 8192
	readers  = 6
	writers  = 1
	duration = 500 * time.Millisecond
)

func run(s bench.Scheme) (mops float64, pending int64) {
	cache := hashmap.New(list.DomainFactory(s.Make),
		hashmap.WithMaxThreads(readers+writers+1),
		hashmap.WithBuckets(256))
	dom := cache.Domain()

	setup := cache.Register()
	for k := uint64(0); k < entries; k++ {
		cache.Insert(setup, k, k^0xABCD)
	}
	setup.Unregister()

	var stop atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup
	worker := func(seed uint64, writer bool) {
		defer wg.Done()
		h := cache.Register()
		defer h.Unregister()
		rng := bench.NewSplitMix64(seed)
		var local int64
		for !stop.Load() {
			k := rng.Intn(entries)
			if writer {
				// Cache refresh: replace the entry (remove + insert churns
				// a node through retire()).
				if cache.Remove(h, k) {
					cache.Insert(h, k, rng.Next())
				}
			} else if v, ok := cache.Get(h, k); ok {
				_ = v
			}
			local++
		}
		ops.Add(local)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go worker(uint64(r)+1, false)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go worker(uint64(w)+100, true)
	}
	start := time.Now()
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	st := dom.Stats()
	cache.Drain()
	return float64(ops.Load()) / elapsed.Seconds() / 1e6, st.PeakPending
}

func main() {
	fmt.Printf("cache: %d entries, %d readers + %d refresher, %v\n\n", entries, readers, writers, duration)
	fmt.Printf("%-8s %12s %16s\n", "scheme", "Mops/s", "peak unreclaimed")
	for _, s := range []bench.Scheme{bench.URCU(), bench.HE(), bench.HEk(16), bench.HP()} {
		mops, peak := run(s)
		fmt.Printf("%-8s %12.3f %16d\n", s.Name, mops, peak)
	}
	fmt.Println("\nk-advance (HE-k16) recovers HE's read fast path under write churn by")
	fmt.Println("letting the era clock advance only every 16th retire (§3.4).")
}

// Command hetrace prints the paper's schematic figures as deterministic,
// machine-checked traces executed against the real implementations:
//
//	hetrace -scenario fig2      Figure 2: era timeline of removing B and C
//	hetrace -scenario fig56     Figures 5/6: epochs vs hazard eras
//	hetrace -scenario families  Figure 1: the three reclamation families
//	hetrace -scenario all
//
// A non-zero exit status means a replay diverged from the paper — i.e. the
// implementation is wrong.
package main

import (
	"flag"
	"fmt"
	"os"
)
import "repro/internal/trace"

func main() {
	scenario := flag.String("scenario", "all", "fig2|fig56|families|all")
	flag.Parse()

	ok := true
	show := func(lines []string, err error) {
		for _, l := range lines {
			fmt.Println(l)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "DIVERGENCE: %v\n", err)
			ok = false
		}
		fmt.Println()
	}

	run := func(name string) {
		switch name {
		case "fig2":
			show(trace.RunFig2())
		case "fig56":
			show(trace.RenderFig56(), nil)
			show(trace.RunFig56HE())
		case "families":
			show(trace.RenderFamilies(), nil)
		default:
			fmt.Fprintf(os.Stderr, "unknown scenario %q\n", name)
			os.Exit(2)
		}
	}

	if *scenario == "all" {
		run("families")
		run("fig2")
		run("fig56")
	} else {
		run(*scenario)
	}
	if !ok {
		os.Exit(1)
	}
}

package main

import "testing"

// TestRCExclusionSetPinned is a regression pin on the rcUnsafe markings:
// Valois slot-level reference counting is re-usage-only on structures with
// frozen interior cells (list-shaped traversals, paper §1 on [28]) and on
// the wait-free queue, whose helping protocol hands descriptor refs across
// threads through the announcement array (FAULT-WFQ-RC-001, reproduced as
// a bounded schedule in internal/wfqueue). Removing any of these markings
// would re-admit a known-unsound combination into the stress matrix.
func TestRCExclusionSetPinned(t *testing.T) {
	want := map[string]bool{
		"list":     true,
		"map":      true,
		"queue":    false,
		"stack":    false,
		"bst":      true,
		"wfq":      true,
		"skiplist": true,
	}
	targets := stressTargets()
	if len(targets) != len(want) {
		t.Fatalf("stress roster has %d targets, want %d", len(targets), len(want))
	}
	for _, tgt := range targets {
		unsafe, ok := want[tgt.name]
		if !ok {
			t.Errorf("unexpected stress target %q", tgt.name)
			continue
		}
		if tgt.rcUnsafe != unsafe {
			t.Errorf("target %q: rcUnsafe = %v, want %v", tgt.name, tgt.rcUnsafe, unsafe)
		}
	}
	if !want["wfq"] {
		t.Fatal("wfq must stay RC-excluded (FAULT-WFQ-RC-001)")
	}
}

// Command hestress runs adversarial stress over the checked, poisoned
// memory substrate: every dereference is generation-validated, so an unsafe
// reclamation by any scheme surfaces as a detected fault instead of silent
// corruption — the Go analogue of running the C++ original under ASAN.
//
// Usage:
//
//	hestress -struct list -scheme HE -threads 8 -dur 5s
//	hestress -struct all -scheme all -dur 1s
//	hestress -struct all -scheme all -dur 1s -grow
//	hestress -struct list -scheme HE -offload 1 -control -gate \
//	  -phases churn:2s,read:1s,stall:2s
//
// Structures: list, map, queue, stack, bst, wfq, skiplist, all. Schemes:
// HP, HE, HE-minmax, IBR, EBR, URCU, hyaline-1r, hyaline, WFE, RC, NONE,
// all. -grow undersizes every
// registry so the dynamic session-growth path (Register past the initial
// capacity) is exercised under full contention; registration never fails
// either way. -valsize N (or zipf:N) attaches a variable-size []byte
// payload to every key of the set-like structures, stressing the byte-class
// sub-allocator's recycle path alongside node reclamation.
//
// -control attaches the adaptive control plane (internal/control) to every
// domain, so the feedback controller retunes the scan threshold, offload
// watermark and worker count live under the stress itself; -budget and
// -gate bound pending bytes and engage admission backpressure on breach.
// -phases shifts the stress regime over a looping schedule — churn
// (update-heavy), read (read-only), stall (a parked reader on pinnable
// structures) — the shifting-load scenario the controller exists for.
// Exit status 1 if any fault was detected.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/bst"
	"repro/internal/hashmap"
	"repro/internal/list"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/reclaim"
	"repro/internal/skiplist"
	"repro/internal/stack"
	"repro/internal/wfqueue"
	"repro/smr"
)

type stressTarget struct {
	name string
	run  func(s bench.Scheme, threads int, dur time.Duration) (faults int64, ops int64)
	// rcUnsafe marks structures with interior cells that deletion freezes
	// forever (list-shaped traversals): Valois-style reference counting is
	// unsound for true reclamation there (paper §1 on [28]) and is skipped.
	// The wait-free queue is also marked: its helping protocol hands
	// descriptor refs between threads through the announcement array, and
	// slot-level counts cannot distinguish slot incarnations across the
	// recycle a helper races with — checked runs fault nondeterministically
	// on a stale descriptor dereference in help(). RC is re-usage-only
	// there too.
	rcUnsafe bool
}

// stressTargets is the full roster with its RC-exclusion markings; package
// level so the regression test can pin the exclusion set (notably wfq —
// see FAULT-WFQ-RC-001 in internal/wfqueue).
func stressTargets() []stressTarget {
	return []stressTarget{
		{"list", stressList, true},
		{"map", stressMap, true},
		{"queue", stressQueue, false},
		{"stack", stressStack, false},
		{"bst", stressBST, true},
		{"wfq", stressWFQueue, true},
		{"skiplist", stressSkipList, true},
	}
}

func main() {
	var (
		structs = flag.String("struct", "all", "list|map|queue|stack|bst|wfq|skiplist|all")
		schemes = flag.String("scheme", "all", "HP|HE|HE-minmax|IBR|EBR|URCU|hyaline-1r|hyaline|WFE|RC|NONE|all")
		threads = flag.Int("threads", 8, "concurrent workers")
		dur     = flag.Duration("dur", time.Second, "stress duration per combination")
		grow    = flag.Bool("grow", false, "undersize the registries (initial capacity 2) so every run exercises dynamic session growth")
		metrics = flag.String("metrics", "", "serve live metrics on this address (/metrics, /metrics.json, /events.json, /debug/pprof); e.g. :9090")
		sample  = flag.String("sample", "", "append per-domain observability snapshots to this file as JSON lines")
		every   = flag.Duration("sample-every", 100*time.Millisecond, "sampling interval for -sample")
		offload = flag.Int("offload", 0, "background reclaimer goroutines per domain (0 = inline reclamation)")
		valsize = flag.String("valsize", "0", "per-key []byte payload size for set-like structures: 0 = word values (off), N = fixed N bytes, zipf:N = skewed sizes in [8,N]")
		trace   = flag.String("trace", "", "sampled per-ref lifecycle tracing: \"all\" = every allocation, N = 1 in 2^N")
		monitor = flag.Bool("monitor", false, "run the online health monitor: invariant alerts at /alerts.json and smr_alerts_*, alert lines to -sample")
		ctrl    = flag.Bool("control", false, "attach the adaptive control plane to every domain: a feedback controller retunes the scan threshold, offload watermark and worker count live while the stress runs")
		budget  = flag.Int64("budget", 0, "pending-bytes budget the -control controller enforces per domain (0 = derive the Equation-1 budget)")
		gate    = flag.Bool("gate", false, "with -control: engage retire-path admission backpressure while the budget is breached")
		phasesF = flag.String("phases", "", "shift the stress-regime over a phase schedule, e.g. churn:3s,read:3s,stall:3s (looped for the run; stall parks a reader on pinnable structures)")
	)
	flag.Parse()
	growMode = *grow

	if *offload > 0 {
		bench.SetOffload(reclaim.OffloadConfig{Workers: *offload})
	}
	if *ctrl {
		bench.SetControl(reclaim.ControlConfig{Enabled: true, BudgetBytes: *budget, Gate: *gate})
	}
	if *phasesF != "" {
		ph, err := bench.ParsePhases(*phasesF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		stressPhases = ph
	}

	var err error
	byteSizer, err = bench.ParseValSizer(*valsize)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *trace != "" {
		tc, err := bench.ParseTrace(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		bench.SetObsTrace(tc)
	}

	if *metrics != "" || *sample != "" || *trace != "" || *monitor {
		hub := obs.NewHub()
		bench.SetObsHub(hub)
		// Close stops the monitor, flushes and stops the sampler, and joins
		// the metrics server — in that order, so shutdown alerts still reach
		// the sample file. Runs after the final sample below.
		defer hub.Close()
		if *metrics != "" {
			addr, _, err := hub.Serve(*metrics)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("metrics: http://%s/metrics\n", addr)
		}
		var smp *obs.Sampler
		if *sample != "" {
			var err error
			smp, err = obs.StartFileSampler(*sample, *every, hub.Domains)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sample: %v\n", err)
				os.Exit(1)
			}
			hub.SetSampler(smp)
			defer func() { smp.Sample(hub.Domains()) }()
			if *ctrl {
				bench.SetControlSink(smp.WriteAction)
			}
		}
		if *monitor {
			mon := obs.NewMonitor(obs.MonitorConfig{}, hub.Domains)
			mon.SetOnAlert(func(a obs.Alert) {
				if smp != nil {
					smp.WriteAlert(a)
				}
				for _, c := range bench.Controllers() {
					c.OnAlert(a)
				}
			})
			hub.SetMonitor(mon)
			mon.Start()
		}
	}

	roster := map[string]bench.Scheme{}
	for _, s := range bench.AllSchemes() {
		roster[s.Name] = s
	}
	var picked []bench.Scheme
	if *schemes == "all" {
		picked = bench.AllSchemes()
	} else {
		for _, name := range strings.Split(*schemes, ",") {
			s, ok := roster[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown scheme %q\n", name)
				os.Exit(2)
			}
			picked = append(picked, s)
		}
	}

	targets := stressTargets()
	if *structs != "all" {
		want := map[string]bool{}
		for _, n := range strings.Split(*structs, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var filtered []stressTarget
		for _, t := range targets {
			if want[t.name] {
				filtered = append(filtered, t)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "no structures matched %q\n", *structs)
			os.Exit(2)
		}
		targets = filtered
	}

	failed := false
	for _, t := range targets {
		for _, s := range picked {
			if t.rcUnsafe && s.Name == "RC" {
				fmt.Printf("%-6s %-10s %10s  skipped: Valois RC is re-usage-only on frozen-cell structures (paper [28])\n", t.name, s.Name, "-")
				continue
			}
			faults, ops := t.run(s, *threads, *dur)
			status := "OK"
			if faults > 0 {
				status = "FAULTS DETECTED"
				failed = true
			}
			fmt.Printf("%-6s %-10s %10d ops  %3d faults  %s\n", t.name, s.Name, ops, faults, status)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// growMode deliberately undersizes every registry so the slot-block growth
// path (Register past the initial capacity) runs under full stress. With it
// off, capacity is sized to the worker count plus setup/stall headroom;
// either way Register never fails — growth is the tentpole guarantee.
var growMode bool

// byteSizer, when non-nil (-valsize), switches the set-like structures into
// byte-value mode: every key carries a variable-size payload through the
// checked byte-class sub-allocator, so payload use-after-free and overruns
// surface as faults alongside the node-level ones.
var byteSizer func(key uint64) int

// capFor picks the initial session capacity for a stress run.
func capFor(threads int) int {
	if growMode {
		return 2
	}
	return threads + 2
}

// guard converts a memory-fault panic (the checked arena's reaction to a
// use-after-free or double free) into a counted failure and stops the run,
// so one bad scheme/structure combination doesn't abort the whole sweep.
func guard(panics *atomic.Int64, stop *atomic.Bool) {
	if r := recover(); r != nil {
		fmt.Fprintf(os.Stderr, "  detected violation: %v\n", r)
		panics.Add(1)
		stop.Store(true)
	}
}

// byteGetter is the payload-read entry point the set-like structures expose
// in byte-value mode; churnSet drives it so stale payload protection (not
// just stale node protection) is under test.
type byteGetter interface {
	GetBytes(g *smr.Guard, key uint64) ([]byte, bool)
}

// stressPhases, when non-nil (-phases), shifts the stress regime over a
// looping phase schedule: churn/stall phases run 100% updates (stall also
// parks a reader mid-protection on pinnable structures), read phases run
// lookups only. With it nil the classic constant 30%-update mix runs.
var stressPhases []bench.Phase

// stressUpdatePct is the live update probability churnSet workers read;
// the phase scheduler rewrites it at each phase boundary.
var stressUpdatePct atomic.Int32

func init() { stressUpdatePct.Store(30) }

// runPhaseSchedule loops the -phases schedule over s until stop is set,
// switching the update probability and parking a stalled reader during
// stall phases. Callers must wait on the returned channel after setting
// stop (the parked reader has to unregister before the structure drains).
func runPhaseSchedule(s bench.Set, stop *atomic.Bool) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer stressUpdatePct.Store(30)
		pinnable, _ := s.(bench.Pinnable)
		for i := 0; !stop.Load(); i++ {
			ph := stressPhases[i%len(stressPhases)]
			switch ph.Name {
			case "read":
				stressUpdatePct.Store(0)
			default: // churn, stall
				stressUpdatePct.Store(100)
			}
			var release chan struct{}
			var readerDone <-chan struct{}
			if ph.Name == "stall" && pinnable != nil {
				release = make(chan struct{})
				readerDone = bench.StalledReader(pinnable, release)
			}
			deadline := time.Now().Add(ph.Dur)
			for time.Now().Before(deadline) && !stop.Load() {
				time.Sleep(time.Millisecond)
			}
			if release != nil {
				close(release)
				<-readerDone
			}
		}
	}()
	return done
}

// churnSet drives a bench.Set with the paper's update workload and constant
// lookups under a checked arena.
func churnSet(s bench.Set, faultsOf func() int64, threads int, dur time.Duration) (int64, int64) {
	const keyRange = 256
	bg, _ := s.(byteGetter)
	setup := smr.Adopt(s.Domain().Register())
	for k := uint64(0); k < keyRange; k++ {
		s.Insert(setup, k, k)
	}
	setup.Unregister()

	var stop atomic.Bool
	var panics atomic.Int64
	var ops atomic.Int64
	var wg sync.WaitGroup
	var scheduleDone <-chan struct{}
	if stressPhases != nil {
		scheduleDone = runPhaseSchedule(s, &stop)
	}
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			defer guard(&panics, &stop)
			h := smr.Adopt(s.Domain().Register())
			defer h.Unregister()
			rng := bench.NewSplitMix64(seed)
			var local int64
			defer func() { ops.Add(local) }()
			for !stop.Load() {
				k := rng.Intn(keyRange)
				switch {
				case rng.Intn(100) < uint64(stressUpdatePct.Load()):
					if s.Remove(h, k) {
						s.Insert(h, k, k)
					}
				case byteSizer != nil && bg != nil && rng.Intn(2) == 0:
					bg.GetBytes(h, k)
				default:
					s.Contains(h, k)
				}
				local++
			}
		}(uint64(w) + 1)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if scheduleDone != nil {
		<-scheduleDone
	}
	return faultsOf() + panics.Load(), ops.Load()
}

func stressList(s bench.Scheme, threads int, dur time.Duration) (int64, int64) {
	opts := []list.Option{list.WithChecked(true), list.WithMaxThreads(capFor(threads))}
	if byteSizer != nil {
		opts = append(opts, list.WithByteValues(byteSizer))
	}
	l := list.New(list.DomainFactory(s.Make), opts...)
	faults, ops := churnSet(l, func() int64 { return l.Arena().Stats().Faults }, threads, dur)
	l.Drain()
	return faults, ops
}

func stressMap(s bench.Scheme, threads int, dur time.Duration) (int64, int64) {
	opts := []hashmap.Option{hashmap.WithChecked(true),
		hashmap.WithMaxThreads(capFor(threads)), hashmap.WithBuckets(32)}
	if byteSizer != nil {
		opts = append(opts, hashmap.WithByteValues(byteSizer))
	}
	m := hashmap.New(list.DomainFactory(s.Make), opts...)
	faults, ops := churnSet(m, func() int64 { return m.Arena().Stats().Faults }, threads, dur)
	m.Drain()
	return faults, ops
}

func stressBST(s bench.Scheme, threads int, dur time.Duration) (int64, int64) {
	opts := []bst.Option{bst.WithChecked(true), bst.WithMaxThreads(capFor(threads))}
	if byteSizer != nil {
		opts = append(opts, bst.WithByteValues(byteSizer))
	}
	t := bst.New(bst.DomainFactory(s.Make), opts...)
	faults, ops := churnSet(t, func() int64 { return t.Arena().Stats().Faults }, threads, dur)
	t.Drain()
	return faults, ops
}

func stressQueue(s bench.Scheme, threads int, dur time.Duration) (int64, int64) {
	q := queue.New(queue.DomainFactory(s.Make), queue.WithChecked(true), queue.WithMaxThreads(capFor(threads)))
	var stop atomic.Bool
	var panics atomic.Int64
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(producer bool) {
			defer wg.Done()
			defer guard(&panics, &stop)
			h := q.Register()
			defer h.Unregister()
			var local int64
			defer func() { ops.Add(local) }()
			for !stop.Load() {
				if producer {
					q.Enqueue(h, uint64(local))
				} else {
					q.Dequeue(h)
				}
				local++
			}
		}(w%2 == 0)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	faults := q.Arena().Stats().Faults + panics.Load()
	q.Drain()
	return faults, ops.Load()
}

func stressStack(s bench.Scheme, threads int, dur time.Duration) (int64, int64) {
	st := stack.New(stack.DomainFactory(s.Make), stack.WithChecked(true), stack.WithMaxThreads(capFor(threads)))
	var stop atomic.Bool
	var panics atomic.Int64
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer guard(&panics, &stop)
			h := st.Register()
			defer h.Unregister()
			var local int64
			defer func() { ops.Add(local) }()
			for !stop.Load() {
				if (int64(w)+local)%2 == 0 {
					st.Push(h, uint64(local))
				} else {
					st.Pop(h)
				}
				local++
			}
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	faults := st.Arena().Stats().Faults + panics.Load()
	st.Drain()
	return faults, ops.Load()
}

func stressWFQueue(s bench.Scheme, threads int, dur time.Duration) (int64, int64) {
	q := wfqueue.New(wfqueue.DomainFactory(s.Make), wfqueue.WithChecked(true), wfqueue.WithMaxThreads(capFor(threads)))
	var stop atomic.Bool
	var panics atomic.Int64
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(producer bool) {
			defer wg.Done()
			defer guard(&panics, &stop)
			h := q.Register()
			defer q.Unregister(h)
			var local int64
			defer func() { ops.Add(local) }()
			for !stop.Load() {
				if producer {
					q.Enqueue(h, uint64(local))
				} else {
					q.Dequeue(h)
				}
				local++
			}
		}(w%2 == 0)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	faults := q.NodeArena().Stats().Faults + q.DescArena().Stats().Faults + panics.Load()
	q.Drain()
	return faults, ops.Load()
}

func stressSkipList(s bench.Scheme, threads int, dur time.Duration) (int64, int64) {
	opts := []skiplist.Option{skiplist.WithChecked(true), skiplist.WithMaxThreads(capFor(threads))}
	if byteSizer != nil {
		opts = append(opts, skiplist.WithByteValues(byteSizer))
	}
	sl := skiplist.New(skiplist.DomainFactory(s.Make), opts...)
	faults, ops := churnSet(sl, func() int64 { return sl.Arena().Stats().Faults }, threads, dur)
	sl.Drain()
	return faults, ops
}

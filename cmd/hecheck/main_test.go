package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestDomainSuiteClean is the no-mutation half of the acceptance gate:
// every scheme must pass the shared-cell safety workload with zero oracle
// violations and zero arena faults across a handful of seeds.
func TestDomainSuiteClean(t *testing.T) {
	for _, sch := range bench.AllSchemes() {
		for seed := uint64(1); seed <= 3; seed++ {
			if vs := runDomainSeed(sch, nil, seed); len(vs) != 0 {
				t.Errorf("%s seed=%d: %v", sch.Name, seed, vs)
			}
		}
	}
}

// TestStructSuiteSmoke runs a spread of (structure, scheme) pairs through
// the bounded linearizability workload. The full matrix runs in CI via the
// hecheck binary; this keeps `go test ./...` fast while still exercising
// all four structures and four distinct schemes.
func TestStructSuiteSmoke(t *testing.T) {
	pairs := []struct {
		structName string
		scheme     bench.Scheme
	}{
		{"list", bench.HE()},
		{"map", bench.URCU()},
		{"queue", bench.EBR()},
		{"stack", bench.RC()},
	}
	for _, p := range pairs {
		for seed := uint64(1); seed <= 2; seed++ {
			if vs := runStructSeed(p.scheme, p.structName, seed); len(vs) != 0 {
				t.Errorf("%s/%s seed=%d: %v", p.structName, p.scheme.Name, seed, vs)
			}
		}
	}
}

// TestMutationKillCheck is the acceptance-criteria mutation gate: with a
// deliberately broken scheme variant armed, the domain suite must
// deterministically report a freed-while-protected or generation-mismatch
// violation within the bounded seed budget, and replaying the violating
// seed must reproduce the identical report.
func TestMutationKillCheck(t *testing.T) {
	cases := []struct {
		name   string
		scheme bench.Scheme
	}{
		{"skip-publish", bench.HE()},
		{"invert-lifespan", bench.HE()},
		{"hyaline-early-dec", bench.Hyaline()},
		{"wfe-skip-validate", bench.WFE()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := parseMutation(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if !spec.schemes[tc.scheme.Name] {
				t.Fatalf("spec %s does not target scheme %s", tc.name, tc.scheme.Name)
			}
			var killedSeed uint64
			var first []string
			for seed := uint64(1); seed <= 8; seed++ {
				if vs := runDomainSeed(tc.scheme, spec, seed); len(vs) != 0 {
					killedSeed, first = seed, vs
					break
				}
			}
			if killedSeed == 0 {
				t.Fatalf("mutation %s survived 8 seeds — oracles failed the kill-check", tc.name)
			}
			found := false
			for _, v := range first {
				if strings.Contains(v, "freed-while-protected") || strings.Contains(v, "reclaimed slot") {
					found = true
				}
			}
			if !found {
				t.Fatalf("mutation %s detected but not by a safety oracle: %v", tc.name, first)
			}
			replay := runDomainSeed(tc.scheme, spec, killedSeed)
			if len(replay) != len(first) {
				t.Fatalf("replay of seed %d not deterministic: %d violations vs %d", killedSeed, len(replay), len(first))
			}
			for i := range replay {
				if replay[i] != first[i] {
					t.Fatalf("replay of seed %d diverged:\n  first:  %s\n  replay: %s", killedSeed, first[i], replay[i])
				}
			}
		})
	}
}

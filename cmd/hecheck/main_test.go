package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// TestDomainSuiteClean is the no-mutation half of the acceptance gate:
// every scheme must pass the shared-cell safety workload with zero oracle
// violations and zero arena faults across a handful of seeds.
func TestDomainSuiteClean(t *testing.T) {
	for _, sch := range bench.AllSchemes() {
		for seed := uint64(1); seed <= 3; seed++ {
			if vs := runDomainSeed(sch, core.MutNone, seed); len(vs) != 0 {
				t.Errorf("%s seed=%d: %v", sch.Name, seed, vs)
			}
		}
	}
}

// TestStructSuiteSmoke runs a spread of (structure, scheme) pairs through
// the bounded linearizability workload. The full matrix runs in CI via the
// hecheck binary; this keeps `go test ./...` fast while still exercising
// all four structures and four distinct schemes.
func TestStructSuiteSmoke(t *testing.T) {
	pairs := []struct {
		structName string
		scheme     bench.Scheme
	}{
		{"list", bench.HE()},
		{"map", bench.URCU()},
		{"queue", bench.EBR()},
		{"stack", bench.RC()},
	}
	for _, p := range pairs {
		for seed := uint64(1); seed <= 2; seed++ {
			if vs := runStructSeed(p.scheme, p.structName, seed); len(vs) != 0 {
				t.Errorf("%s/%s seed=%d: %v", p.structName, p.scheme.Name, seed, vs)
			}
		}
	}
}

// TestMutationKillCheck is the acceptance-criteria mutation gate: with a
// deliberately broken Hazard Eras variant armed, the domain suite must
// deterministically report a freed-while-protected or generation-mismatch
// violation within the bounded seed budget, and replaying the violating
// seed must reproduce the identical report.
func TestMutationKillCheck(t *testing.T) {
	cases := []struct {
		name string
		mut  core.TestingMutation
	}{
		{"skip-publish", core.MutSkipPublish},
		{"invert-lifespan", core.MutInvertLifespan},
	}
	he := bench.HE()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var killedSeed uint64
			var first []string
			for seed := uint64(1); seed <= 8; seed++ {
				if vs := runDomainSeed(he, tc.mut, seed); len(vs) != 0 {
					killedSeed, first = seed, vs
					break
				}
			}
			if killedSeed == 0 {
				t.Fatalf("mutation %s survived 8 seeds — oracles failed the kill-check", tc.name)
			}
			found := false
			for _, v := range first {
				if strings.Contains(v, "freed-while-protected") || strings.Contains(v, "reclaimed slot") {
					found = true
				}
			}
			if !found {
				t.Fatalf("mutation %s detected but not by a safety oracle: %v", tc.name, first)
			}
			replay := runDomainSeed(he, tc.mut, killedSeed)
			if len(replay) != len(first) {
				t.Fatalf("replay of seed %d not deterministic: %d violations vs %d", killedSeed, len(replay), len(first))
			}
			for i := range replay {
				if replay[i] != first[i] {
					t.Fatalf("replay of seed %d diverged:\n  first:  %s\n  replay: %s", killedSeed, first[i], replay[i])
				}
			}
		})
	}
}

// Command hecheck is the repository's deterministic correctness gate: it
// drives the reclamation schemes and the structures built on them through
// seeded cooperative schedules (internal/schedtest) and checks two
// orthogonal properties on every run:
//
//   - Safety (domain suite): a shared-cell protect/validate/dereference
//     workload where readers register every VALIDATED protection with the
//     freed-while-protected oracle and assert generation liveness with
//     mem.CheckAccess, while a writer swaps cells and retires the old
//     objects. Any scheme that frees a validated-held object, or lets a
//     reader dereference reclaimed memory, is reported with the schedule
//     seed that exposes it.
//
//   - Linearizability (struct suite): bounded concurrent histories of the
//     list, hash map, queue and stack under every scheme, recorded with
//     internal/linz and checked against the sequential model (Wing-Gong).
//
// Every failure names its schedule seed; rerunning with -seed N replays
// that exact interleaving. The -mutate flag arms a deliberately broken
// scheme variant (core.TestingMutation, hyaline.TestingMutation,
// wfe.TestingMutation) and inverts the exit logic: detecting the defect is
// success — the kill-check that proves the oracles can actually catch the
// bug class they claim to.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/hyaline"
	"repro/internal/linz"
	"repro/internal/list"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/reclaim"
	"repro/internal/schedtest"
	"repro/internal/stack"
	"repro/internal/wfe"
	"repro/smr"
)

var (
	flagSuite     = flag.String("suite", "all", "suite to run: domain, struct, all")
	flagStruct    = flag.String("struct", "", "comma-separated structure filter (list,map,queue,stack)")
	flagScheme    = flag.String("scheme", "", "comma-separated scheme filter (HP,HE,HE-minmax,IBR,EBR,URCU,hyaline-1r,WFE,RC,NONE)")
	flagSeeds     = flag.Uint64("seeds", 8, "number of schedule seeds to explore (1..N)")
	flagSeed      = flag.Uint64("seed", 0, "replay exactly this schedule seed (overrides -seeds)")
	flagWorkers   = flag.Int("workers", 3, "workers per schedule (struct suite: all mixed; domain suite: readers + writer(s))")
	flagOps       = flag.Int("ops", 8, "operations per worker per schedule")
	flagSwitchPct = flag.Int("switchpct", 30, "token-switch probability at eligible gates (0..100)")
	flagMaxSteps  = flag.Uint64("maxsteps", 1<<20, "schedule budget: gates per run before abort")
	flagMutate    = flag.String("mutate", "", "arm a kill-check defect: skip-publish, invert-lifespan (HE), hyaline-early-dec, wfe-skip-validate (domain suite only)")
	flagVerbose   = flag.Bool("v", false, "print every combination, not only failures")
)

// rcUnsafeStructs mirrors cmd/hestress's exclusion set for the structures
// this driver checks: Valois slot-level counts cannot span the Harris
// list's frozen marked cells (and everything built on them).
var rcUnsafeStructs = map[string]bool{"list": true, "map": true}

func main() {
	flag.Parse()
	if *flagWorkers < 2 {
		fatalf("need at least 2 workers")
	}
	if n := *flagWorkers * *flagOps; n > 64 {
		fatalf("workers*ops = %d exceeds the 64-entry history bound of the linearizability checker", n)
	}

	mutation, err := parseMutation(*flagMutate)
	if err != nil {
		fatalf("%v", err)
	}
	seeds := seedList()
	schemes := filterSchemes()
	structs := filterStructs()

	var failures []string
	runs := 0
	if *flagSuite == "domain" || *flagSuite == "all" {
		for _, sch := range schemes {
			if mutation != nil && !mutation.schemes[sch.Name] {
				continue // the defect lives in a different scheme
			}
			for _, seed := range seeds {
				runs++
				vs := runDomainSeed(sch, mutation, seed)
				report("domain", sch.Name, seed, vs, &failures)
			}
		}
	}
	if (*flagSuite == "struct" || *flagSuite == "all") && mutation == nil {
		for _, sch := range schemes {
			for _, st := range structs {
				if sch.Name == "RC" && rcUnsafeStructs[st] {
					continue
				}
				for _, seed := range seeds {
					runs++
					vs := runStructSeed(sch, st, seed)
					report(st, sch.Name, seed, vs, &failures)
				}
			}
		}
	}

	if mutation != nil {
		// Kill-check semantics: the armed defect MUST be detected.
		if len(failures) > 0 {
			fmt.Printf("mutation %q killed: %d violation(s) across %d runs; first: %s\n",
				*flagMutate, len(failures), runs, failures[0])
			return
		}
		fmt.Printf("mutation %q SURVIVED %d runs — the oracles missed an armed defect\n", *flagMutate, runs)
		os.Exit(1)
	}
	if len(failures) > 0 {
		fmt.Printf("FAIL: %d violation(s) across %d runs\n", len(failures), runs)
		os.Exit(1)
	}
	fmt.Printf("ok: %d runs clean (%d seeds, switchpct %d)\n", runs, len(seeds), *flagSwitchPct)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hecheck: "+format+"\n", args...)
	os.Exit(2)
}

// mutationSpec describes one armable kill-check defect: which schemes it
// lives in, how to arm it on a freshly built domain, and how many writers
// the domain workload needs for the defect to be reachable at all.
type mutationSpec struct {
	name    string
	schemes map[string]bool
	arm     func(dom reclaim.Domain)
	// writers is the number of writer workers the domain workload runs for
	// this defect (default 1). WFE's helping defect needs two: the helper
	// only certifies an unsafe pair when a SECOND retirer advances the
	// clock between its cell raise and its source load.
	writers int
	// minOps raises the per-worker operation count when the defect needs a
	// long chain of interleavings to manifest; targeted concentrates the
	// schedule's token switches on the gate kinds spanning that chain;
	// cells overrides the shared-cell count (fewer cells raise the odds a
	// writer swap collides with the announced source); minWorkers raises the
	// worker count so more readers announce concurrently.
	minOps     int
	targeted   []schedtest.Kind
	cells      int
	minWorkers int
	// spinHold replaces the reader's second protected window with spinHold
	// bare token-switch gates while the first hold is live. Defects whose
	// victim is an era-uncovered adopted protection need this: a second
	// Protect would republish fresh eras that re-cover the victim and mask
	// the free-under-hold.
	spinHold int
}

func parseMutation(s string) (*mutationSpec, error) {
	heSchemes := map[string]bool{"HE": true, "HE-minmax": true}
	switch s {
	case "":
		return nil, nil
	case "skip-publish":
		return &mutationSpec{name: s, schemes: heSchemes, arm: func(d reclaim.Domain) {
			d.(*core.Eras).EnableMutation(core.MutSkipPublish)
		}}, nil
	case "invert-lifespan":
		return &mutationSpec{name: s, schemes: heSchemes, arm: func(d reclaim.Domain) {
			d.(*core.Eras).EnableMutation(core.MutInvertLifespan)
		}}, nil
	case "hyaline-early-dec":
		return &mutationSpec{name: s, schemes: map[string]bool{"hyaline-1r": true}, arm: func(d reclaim.Domain) {
			d.(*hyaline.Domain).EnableMutation(hyaline.MutEarlyDecRef)
		}}, nil
	case "wfe-skip-validate":
		// The unsafe certification needs helper-raise → other-writer advance
		// → other-writer republish → helper load → reader adopt, all inside
		// one announcement: two writers so one can stall mid-help while the
		// other moves the clock, a longer op stream, and MaxTries 0 so every
		// reader Protect announces (each one is a chance at the chain).
		return &mutationSpec{
			name: s, schemes: map[string]bool{"WFE": true},
			writers: 2, minWorkers: 4, minOps: 30, cells: 2, spinHold: 8,
			arm: func(d reclaim.Domain) {
				w := d.(*wfe.Domain)
				w.EnableMutation(wfe.MutSkipHelpValidate)
				w.SetMaxTries(0)
			}}, nil
	}
	return nil, fmt.Errorf("unknown -mutate %q (want skip-publish, invert-lifespan, hyaline-early-dec or wfe-skip-validate)", s)
}

func seedList() []uint64 {
	if *flagSeed != 0 {
		return []uint64{*flagSeed}
	}
	seeds := make([]uint64, 0, *flagSeeds)
	for s := uint64(1); s <= *flagSeeds; s++ {
		seeds = append(seeds, s)
	}
	return seeds
}

func filterSchemes() []bench.Scheme {
	all := bench.AllSchemes()
	if *flagScheme == "" {
		return all
	}
	want := map[string]bool{}
	for _, n := range strings.Split(*flagScheme, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []bench.Scheme
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		fatalf("no scheme matches %q", *flagScheme)
	}
	return out
}

func filterStructs() []string {
	all := []string{"list", "map", "queue", "stack"}
	if *flagStruct == "" {
		return all
	}
	want := map[string]bool{}
	for _, n := range strings.Split(*flagStruct, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []string
	for _, s := range all {
		if want[s] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		fatalf("no structure matches %q", *flagStruct)
	}
	return out
}

func report(suite, scheme string, seed uint64, violations []string, failures *[]string) {
	if len(violations) == 0 {
		if *flagVerbose {
			fmt.Printf("ok   %-6s %-9s seed=%d\n", suite, scheme, seed)
		}
		return
	}
	mutArg := ""
	if *flagMutate != "" {
		mutArg = " -mutate " + *flagMutate
	}
	replay := fmt.Sprintf("hecheck%s -suite domain -scheme %s -seed %d", mutArg, scheme, seed)
	if suite != "domain" {
		replay = fmt.Sprintf("hecheck -suite struct -struct %s -scheme %s -seed %d", suite, scheme, seed)
	}
	for _, v := range violations {
		line := fmt.Sprintf("%s/%s seed=%d: %s", suite, scheme, seed, v)
		fmt.Printf("FAIL %s\n     replay: %s\n", line, replay)
		*failures = append(*failures, line)
	}
}

// splitmix is the per-worker workload PRNG — independent of the schedule
// PRNG so a worker's operation sequence depends only on (seed, worker id),
// never on the interleaving.
func splitmix(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// faultLog collects checked-arena faults instead of panicking, so a run
// reports every violation it produced under one seed.
type faultLog struct {
	mu   sync.Mutex
	msgs []string
}

func (f *faultLog) record(msg string) {
	f.mu.Lock()
	f.msgs = append(f.msgs, msg)
	f.mu.Unlock()
}

func (f *faultLog) take() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.msgs
}

// runDomainSeed runs the shared-cell safety workload for one scheme under
// one schedule seed and returns every violation observed.
//
// Workload shape: numCells shared cells each holding a live object.
// Readers protect a cell's object, RE-VALIDATE the cell still names it
// (the soundness condition for the oracle — see schedtest.Oracle), record
// the hold, open a second protected window (whose gates hand the token to
// the writer mid-hold), and assert liveness with CheckAccess. The writer
// swaps fresh objects into cells and retires the old ones; retirement,
// scanning and freeing all pass through gated reclamation paths, and every
// reclamation-path free is cross-checked against the oracle's shadow table.
func runDomainSeed(sch bench.Scheme, mutation *mutationSpec, seed uint64) []string {
	numCells := 3
	workers := *flagWorkers
	ops := *flagOps
	writers := 1
	if mutation != nil {
		if mutation.writers > 1 {
			writers = mutation.writers
		}
		if workers < writers+1 {
			workers = writers + 1 // at least one reader
		}
		if workers < mutation.minWorkers {
			workers = mutation.minWorkers
		}
		if ops < mutation.minOps {
			ops = mutation.minOps
		}
		if mutation.cells > 0 {
			numCells = mutation.cells
		}
	}

	var faults faultLog
	arena := mem.NewArena[uint64](
		mem.Checked[uint64](true),
		mem.WithShards[uint64](workers+1),
		mem.WithFaultHandler[uint64](faults.record),
	)
	dom := sch.Make(arena, reclaim.Config{MaxThreads: workers + 1, Slots: 2})
	// Schemes with an announce threshold (WFE) drop it to the minimum so
	// every seeded schedule reaches the slow path and the helping protocol,
	// not just the HE-shaped fast path. Armed before the mutation so a
	// kill-check spec can tighten it further (wfe-skip-validate zeroes it).
	if mt, ok := dom.(interface{ SetMaxTries(int) }); ok {
		mt.SetMaxTries(1)
	}
	if mutation != nil {
		mutation.arm(dom)
	}
	oracle := schedtest.NewOracle()
	if g, ok := dom.(interface{ SetFreeGuard(func(mem.Ref)) }); ok {
		g.SetFreeGuard(oracle.FreeGuard)
	}

	cells := make([]atomic.Uint64, numCells)
	setup := dom.Register()
	for i := range cells {
		ref, p := arena.Alloc()
		*p = uint64(i)
		dom.OnAlloc(ref)
		cells[i].Store(uint64(ref))
	}

	handles := make([]*reclaim.Handle, workers)
	for w := range handles {
		handles[w] = dom.Register()
	}

	reader := func(w int) func() {
		h := handles[w]
		return func() {
			rng := seed<<8 ^ uint64(w)
			for k := 0; k < ops; k++ {
				dom.BeginOp(h)
				ci := int(splitmix(&rng) % uint64(numCells))
				ref := h.Protect(0, &cells[ci]).Unmarked()
				if !ref.IsNil() && cells[ci].Load() == uint64(ref) {
					// Validated: the cell still named ref AFTER the
					// protection was established, so the scheme owes us its
					// liveness until we drop the hold.
					oracle.Hold(w, 0, ref)
					if mutation != nil && mutation.spinHold > 0 {
						// Bare token-switch windows with the hold live: no
						// second Protect, so nothing republishes a fresh era
						// that could re-cover an era-uncovered victim. (A
						// probability-gated kind, not PointSpin — the holder
						// is not waiting on anyone and may be last to finish.)
						for s := 0; s < mutation.spinHold; s++ {
							schedtest.Point(schedtest.PointProtect)
							arena.CheckAccess(ref)
						}
					} else {
						// A second protected window: its gates can hand the
						// token to the writer while the first hold is live.
						cj := int(splitmix(&rng) % uint64(numCells))
						ref2 := h.Protect(1, &cells[cj]).Unmarked()
						if !ref2.IsNil() && cells[cj].Load() == uint64(ref2) {
							oracle.Hold(w, 1, ref2)
							arena.CheckAccess(ref2)
						}
					}
					arena.CheckAccess(ref)
				}
				oracle.DropAll(w)
				dom.EndOp(h)
			}
		}
	}
	writer := func(w int) func() {
		h := handles[w]
		return func() {
			rng := seed<<8 ^ uint64(w)
			for k := 0; k < ops; k++ {
				ci := int(splitmix(&rng) % uint64(numCells))
				old := mem.Ref(cells[ci].Load())
				ref, p := arena.AllocAt(h.ID())
				*p = splitmix(&rng)
				dom.OnAlloc(ref)
				if cells[ci].CompareAndSwap(uint64(old), uint64(ref)) {
					h.Retire(old)
				} else {
					arena.FreeAt(h.ID(), ref) // never published
				}
			}
		}
	}

	fns := make([]func(), workers)
	for w := 0; w < workers-writers; w++ {
		fns[w] = reader(w)
	}
	for w := workers - writers; w < workers; w++ {
		fns[w] = writer(w)
	}

	cfg := schedtest.Config{
		Seed:      seed,
		SwitchPct: *flagSwitchPct,
		MaxSteps:  *flagMaxSteps,
	}
	if mutation != nil {
		cfg.Targeted = mutation.targeted
	}
	var violations []string
	if err := schedtest.Run(cfg, fns...); err != nil {
		violations = append(violations, err.Error())
	}
	violations = append(violations, oracle.Violations()...)
	for _, msg := range faults.take() {
		violations = append(violations, "arena fault: "+msg)
	}

	for _, h := range handles {
		h.Unregister()
	}
	setup.Unregister()
	dom.Drain()
	return violations
}

// structOps adapts one structure behind a common op surface so a single
// worker body drives all four.
type structOps struct {
	model linz.Model
	// update runs one randomized operation and records it; set-like
	// structures insert/remove/contains over a small key range, LIFO/FIFO
	// structures push unique values and pop.
	step  func(g *smr.Guard, rec *linz.Recorder, w int, rng *uint64)
	dom   reclaim.Domain
	drain func()
}

func makeStruct(name string, sch bench.Scheme) structOps {
	threads := *flagWorkers + 1
	switch name {
	case "list", "map":
		var (
			insert   func(g *smr.Guard, k, v uint64) bool
			remove   func(g *smr.Guard, k uint64) bool
			contains func(g *smr.Guard, k uint64) bool
			dom      reclaim.Domain
			drain    func()
		)
		if name == "list" {
			l := list.New(list.DomainFactory(sch.Make), list.WithChecked(true), list.WithMaxThreads(threads))
			insert, remove, contains = l.Insert, l.Remove, l.Contains
			dom, drain = l.Domain(), l.Drain
		} else {
			m := hashmap.New(list.DomainFactory(sch.Make), hashmap.WithChecked(true), hashmap.WithMaxThreads(threads), hashmap.WithBuckets(2))
			insert, remove, contains = m.Insert, m.Remove, m.Contains
			dom, drain = m.Domain(), m.Drain
		}
		const keyRange = 3
		return structOps{
			model: linz.NewSetModel(),
			dom:   dom,
			drain: drain,
			step: func(g *smr.Guard, rec *linz.Recorder, w int, rng *uint64) {
				key := splitmix(rng) % keyRange
				switch splitmix(rng) % 4 {
				case 0, 1:
					op := rec.Call(w, linz.OpInsert, key)
					op.Return(0, insert(g, key, key))
				case 2:
					op := rec.Call(w, linz.OpRemove, key)
					op.Return(0, remove(g, key))
				default:
					op := rec.Call(w, linz.OpContains, key)
					op.Return(0, contains(g, key))
				}
			},
		}
	case "queue":
		q := queue.New(queue.DomainFactory(sch.Make), queue.WithChecked(true), queue.WithMaxThreads(threads))
		return structOps{
			model: linz.NewQueueModel(),
			dom:   q.Domain(),
			drain: q.Drain,
			step: func(g *smr.Guard, rec *linz.Recorder, w int, rng *uint64) {
				if splitmix(rng)%2 == 0 {
					v := uint64(w)<<32 | splitmix(rng)&0xFFFF
					op := rec.Call(w, linz.OpPush, v)
					q.Enqueue(g, v)
					op.Return(0, true)
				} else {
					op := rec.Call(w, linz.OpPop, 0)
					v, ok := q.Dequeue(g)
					op.Return(v, ok)
				}
			},
		}
	case "stack":
		s := stack.New(stack.DomainFactory(sch.Make), stack.WithChecked(true), stack.WithMaxThreads(threads))
		return structOps{
			model: linz.NewStackModel(),
			dom:   s.Domain(),
			drain: s.Drain,
			step: func(g *smr.Guard, rec *linz.Recorder, w int, rng *uint64) {
				if splitmix(rng)%2 == 0 {
					v := uint64(w)<<32 | splitmix(rng)&0xFFFF
					op := rec.Call(w, linz.OpPush, v)
					s.Push(g, v)
					op.Return(0, true)
				} else {
					op := rec.Call(w, linz.OpPop, 0)
					v, ok := s.Pop(g)
					op.Return(v, ok)
				}
			},
		}
	}
	fatalf("unknown structure %q", name)
	return structOps{}
}

// runStructSeed runs the bounded linearizability workload for one
// (structure, scheme) pair under one schedule seed. A checked-arena fault
// panics inside a worker; the controller recovers it and reports it (with
// the seed) as the schedule error.
func runStructSeed(sch bench.Scheme, structName string, seed uint64) []string {
	so := makeStruct(structName, sch)
	workers := *flagWorkers
	ops := *flagOps

	rec := linz.NewRecorder()
	handles := make([]*smr.Guard, workers)
	for w := range handles {
		handles[w] = smr.Adopt(so.dom.Register())
	}
	fns := make([]func(), workers)
	for w := 0; w < workers; w++ {
		w := w
		fns[w] = func() {
			rng := seed<<8 ^ uint64(w)
			for k := 0; k < ops; k++ {
				so.step(handles[w], rec, w, &rng)
			}
		}
	}

	var violations []string
	if err := schedtest.Run(schedtest.Config{
		Seed:      seed,
		SwitchPct: *flagSwitchPct,
		MaxSteps:  *flagMaxSteps,
	}, fns...); err != nil {
		violations = append(violations, err.Error())
	}
	if history := rec.History(); !linz.Check(history, so.model) {
		violations = append(violations,
			fmt.Sprintf("history of %d ops is not linearizable", len(history)))
	}

	for _, h := range handles {
		h.Unregister()
	}
	so.drain()
	return violations
}

// Command hemon is a terminal monitor for the observability endpoint that
// hebench/hestress serve with -metrics. It polls /metrics.json (and, with
// -events, /events.json) and renders a per-scheme dashboard: reclamation
// counters, the robustness gauges (pending, era lag, stalled sessions),
// sampled latency quantiles for the protect/retire/scan paths, and — when
// the endpoint runs with -trace/-monitor — reclamation-age quantiles, the
// longest-pinned table, scheme-deep gauges, and the health monitor's
// active alerts and transition log (/alerts.json).
//
// Usage:
//
//	hebench -exp stalled -metrics 127.0.0.1:9200 -hold 1m &
//	hemon -addr 127.0.0.1:9200
//	hemon -addr 127.0.0.1:9200 -once -events 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:9090", "host:port of a running -metrics endpoint")
		every  = flag.Duration("every", time.Second, "poll interval")
		once   = flag.Bool("once", false, "print one frame and exit")
		events = flag.Int("events", 0, "also show the last N flight-recorder events per scheme")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	for {
		frame, err := render(client, *addr, *events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hemon: %v\n", err)
			if *once {
				os.Exit(1)
			}
		} else {
			if !*once {
				fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
			}
			fmt.Print(frame)
		}
		if *once {
			return
		}
		time.Sleep(*every)
	}
}

func render(client *http.Client, addr string, events int) (string, error) {
	var snaps []obs.DomainSnapshot
	if err := getJSON(client, "http://"+addr+"/metrics.json", &snaps); err != nil {
		return "", err
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Scheme < snaps[j].Scheme })

	var b strings.Builder
	fmt.Fprintf(&b, "smr observability — %s — %s\n\n", addr, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s %8s %9s %8s %8s %8s\n",
		"scheme", "retired", "freed", "pending", "pend-bytes", "scans", "era-clock", "lag-max", "stalled", "dropped")
	for _, s := range snaps {
		lag, stalled := "-", "-"
		if s.HasEras {
			lag = fmt.Sprintf("%d", s.EraLagMax)
			stalled = fmt.Sprintf("%d", s.Stalled)
		}
		fmt.Fprintf(&b, "%-10s %10d %10d %10d %12d %8d %9d %8s %8s %8d\n",
			s.Scheme, s.Retired, s.Freed, s.Pending, s.PendingBytes, s.Scans, s.EraClock, lag, stalled, s.Dropped)
	}

	fmt.Fprintf(&b, "\n%-10s %-26s %-26s %-26s\n", "latency", "protect p50/p99/max", "retire p50/p99/max", "scan p50/p99/max")
	for _, s := range snaps {
		fmt.Fprintf(&b, "%-10s %-26s %-26s %-26s\n",
			s.Scheme, quantiles(s.Protect), quantiles(s.Retire), quantiles(s.Scan))
	}

	// Lifecycle tracer: only schemes running with -trace carry the
	// reclamation-age histogram (retire→free latency — the runtime form of
	// the Equation-1 bound) and the longest-pinned table.
	var traceRows []obs.DomainSnapshot
	for _, s := range snaps {
		if s.HasTrace {
			traceRows = append(traceRows, s)
		}
	}
	if len(traceRows) > 0 {
		fmt.Fprintf(&b, "\n%-10s %-26s %12s %8s %8s\n",
			"tracer", "reclaim-age p50/p99/max", "aged-spans", "live", "pinned")
		for _, s := range traceRows {
			fmt.Fprintf(&b, "%-10s %-26s %12d %8d %8d\n",
				s.Scheme, quantiles(s.ReclaimAge), s.ReclaimAge.Count, s.TraceLive, len(s.Pinned))
		}
		for _, s := range traceRows {
			if len(s.Pinned) == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n%s longest-pinned refs:\n", s.Scheme)
			for _, p := range s.Pinned {
				holders := "-"
				if len(p.Holders) > 0 {
					var parts []string
					for _, h := range p.Holders {
						parts = append(parts, fmt.Sprintf("s%d@era%d", h.Session, h.Era))
					}
					holders = strings.Join(parts, " ")
				}
				if p.BirthEra != 0 || p.RetireEra != 0 {
					fmt.Fprintf(&b, "  ref %#x  age %s  eras [%d,%d]  held by %s\n",
						p.Ref, ns(p.AgeNs), p.BirthEra, p.RetireEra, holders)
				} else {
					fmt.Fprintf(&b, "  ref %#x  age %s  held by %s\n", p.Ref, ns(p.AgeNs), holders)
				}
			}
		}
	}

	// Background-reclamation pipeline: only schemes running with offload
	// enabled carry the gauges. A queue hovering near the watermark with a
	// climbing fallback counter is the signature of a lagging reclaimer.
	var offRows []obs.DomainSnapshot
	for _, s := range snaps {
		if s.Offload != nil {
			offRows = append(offRows, s)
		}
	}
	if len(offRows) > 0 {
		fmt.Fprintf(&b, "\n%-10s %8s %11s %12s %14s %10s %10s %-26s\n",
			"offload", "workers", "queue-refs", "queue-bytes", "watermark", "handoffs", "fallbacks", "latency p50/p99/max")
		for _, s := range offRows {
			o := s.Offload
			fmt.Fprintf(&b, "%-10s %8d %11d %12d %14d %10d %10d %-26s\n",
				s.Scheme, o.Workers, o.QueuedRefs, o.QueuedBytes, o.WatermarkBytes, o.Handoffs, o.Fallbacks, quantiles(s.OffloadLat))
		}
	}

	// Adaptive control plane: only schemes running with -control carry the
	// status. Negative headroom means the pending-bytes budget is breached;
	// with -gate the controller answers by engaging admission backpressure
	// (GATED) until pending falls back under the release fraction.
	var ctlRows []obs.DomainSnapshot
	for _, s := range snaps {
		if s.Control != nil {
			ctlRows = append(ctlRows, s)
		}
	}
	if len(ctlRows) > 0 {
		fmt.Fprintf(&b, "\n%-10s %10s %8s %14s %6s %12s %12s %11s %6s\n",
			"control", "threshold", "workers", "watermark", "gated", "budget", "headroom", "actuations", "gates")
		for _, s := range ctlRows {
			c := s.Control
			gated := "-"
			if c.Gated {
				gated = "GATED"
			}
			fmt.Fprintf(&b, "%-10s %10d %8d %14d %6s %12d %12d %11d %6d\n",
				s.Scheme, c.ScanThreshold, c.Workers, c.WatermarkBytes, gated,
				c.BudgetBytes, c.HeadroomBytes, c.Actuations, c.GateCount)
		}
		for _, s := range ctlRows {
			if len(s.Control.LastActions) == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n%s recent actuations:\n", s.Scheme)
			for _, a := range s.Control.LastActions {
				fmt.Fprintf(&b, "  %10.3fs  %-14s %-18s %d -> %d\n",
					float64(a.TMillis)/1e3, a.Knob, a.Reason, a.From, a.To)
			}
		}
	}

	// Size-class occupancy: only domains whose arena exposes class accounting
	// (byte-value mode) carry the gauges. Class 0 is the typed node slab;
	// classes 1+ are the byte-payload ladder. Idle classes are elided.
	for _, s := range snaps {
		var active []obs.ArenaClass
		for _, c := range s.Classes {
			if c.Live != 0 || c.Allocs != 0 {
				active = append(active, c)
			}
		}
		if len(active) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s arena size classes:\n", s.Scheme)
		fmt.Fprintf(&b, "  %5s %6s %10s %12s %10s %6s %10s %10s %8s %8s\n",
			"class", "size", "live", "live-bytes", "capacity", "slabs", "allocs", "frees", "spills", "refills")
		for _, c := range active {
			fmt.Fprintf(&b, "  %5d %6d %10d %12d %10d %6d %10d %10d %8d %8d\n",
				c.Class, c.Size, c.Live, c.Live*c.Footprint, c.Capacity, c.Slabs, c.Allocs, c.Frees, c.Spills, c.Refills)
		}
	}

	for _, s := range snaps {
		var active []obs.SessionEra
		for _, se := range s.Sessions {
			if se.Lag > 0 {
				active = append(active, se)
			}
		}
		if len(active) > 0 {
			sort.Slice(active, func(i, j int) bool { return active[i].Lag > active[j].Lag })
			if len(active) > 8 {
				active = active[:8]
			}
			fmt.Fprintf(&b, "\n%s lagging sessions:", s.Scheme)
			for _, se := range active {
				mark := ""
				if se.Stalled {
					mark = " STALLED"
				}
				fmt.Fprintf(&b, " [s%d lag=%d%s]", se.Session, se.Lag, mark)
			}
			fmt.Fprintln(&b)
		}
	}

	// Scheme-deep gauges: whatever the scheme registered beyond the generic
	// reclamation set — Hyaline handoff stacks and batch ages, WFE helping
	// counters, per-worker offload queue depths.
	for _, s := range snaps {
		if len(s.SchemeMetrics) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s scheme metrics:\n", s.Scheme)
		for _, m := range s.SchemeMetrics {
			if m.Label != "" {
				var parts []string
				for _, lv := range m.Values {
					parts = append(parts, fmt.Sprintf("%s=%s=%d", m.Label, lv.Label, lv.Value))
				}
				if len(parts) == 0 {
					parts = append(parts, "-")
				}
				fmt.Fprintf(&b, "  %-36s %s\n", m.Name, strings.Join(parts, " "))
			} else if strings.HasSuffix(m.Name, "_ns") {
				fmt.Fprintf(&b, "  %-36s %s\n", m.Name, ns(m.Value))
			} else {
				fmt.Fprintf(&b, "  %-36s %d\n", m.Name, m.Value)
			}
		}
	}

	// Health monitor: /alerts.json always exists on the endpoint and returns
	// empty slices when no monitor is attached, so this panel simply stays
	// blank in that case.
	var alerts struct {
		Status []obs.AlertStatus `json:"status"`
		Log    []obs.Alert       `json:"log"`
	}
	if err := getJSON(client, "http://"+addr+"/alerts.json", &alerts); err == nil {
		var active []obs.AlertStatus
		for _, st := range alerts.Status {
			if st.Active {
				active = append(active, st)
			}
		}
		if len(active) > 0 {
			fmt.Fprintf(&b, "\nACTIVE ALERTS:\n")
			for _, st := range active {
				fmt.Fprintf(&b, "  %-10s %-18s value=%d threshold=%d (raised %d, cleared %d)\n",
					st.Scheme, st.Invariant, st.Value, st.Threshold, st.Raises, st.Clears)
			}
		}
		if n := len(alerts.Log); n > 0 {
			const last = 8
			lo := n - last
			if lo < 0 {
				lo = 0
			}
			fmt.Fprintf(&b, "\nalert log (last %d of %d):\n", n-lo, n)
			for _, a := range alerts.Log[lo:] {
				fmt.Fprintf(&b, "  %10.3fs  %-5s %-10s %-18s value=%d threshold=%d %s\n",
					float64(a.TMillis)/1e3, strings.ToUpper(a.State), a.Scheme, a.Invariant, a.Value, a.Threshold, a.Detail)
			}
		}
	}

	if events > 0 {
		var recorded []struct {
			Scheme string      `json:"scheme"`
			Events []obs.Event `json:"events"`
		}
		if err := getJSON(client, fmt.Sprintf("http://%s/events.json?max=%d", addr, events), &recorded); err != nil {
			return "", err
		}
		for _, d := range recorded {
			if len(d.Events) == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n%s flight recorder (last %d):\n", d.Scheme, len(d.Events))
			for _, e := range d.Events {
				fmt.Fprintf(&b, "  %12.3fms  s%-3d %-10s %d\n",
					float64(e.T)/1e6, e.Session, e.KindStr, e.Value)
			}
		}
	}
	return b.String(), nil
}

func quantiles(h obs.HistSnapshot) string {
	if h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%s/%s/%s", ns(h.Quantile(0.5)), ns(h.Quantile(0.99)), ns(h.Max))
}

// ns renders a nanosecond reading with a compact unit.
func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// Command heanalyze reconstructs reclamation behaviour offline from the
// JSONL files the -sample flag of hebench/hestress writes. The file mixes
// four line shapes (see internal/obs.Sampler): per-domain snapshots,
// completed per-ref lifecycle spans (-trace), health-alert transitions
// (-monitor), and controller knob actuations (-control). heanalyze folds
// them into:
//
//   - a per-scheme summary: spans completed, reclamation-age (retire→free)
//     quantiles and a log2 age histogram recomputed from the spans
//     themselves — the offline form of the live smr_reclaim_age_ns series;
//   - per-ref timelines (-spans N / -ref R): every recorded lifecycle event
//     of the longest-lived spans, timestamped relative to allocation;
//   - a per-session pin report from each scheme's peak-pinned snapshot
//     (and, if refs are still pinned, its final one): which sessions hold
//     pinned refs, at what era, for how long — the offline attribution of
//     a Figure-4 stall to the session causing it;
//   - the alert log: every raise/clear transition the monitor emitted;
//   - the actuation log: every knob move the adaptive controller applied
//     (-control), per scheme, with a per-knob/per-reason summary.
//
// Usage:
//
//	heanalyze run.jsonl
//	heanalyze -scheme HE -spans 3 run.jsonl
//	heanalyze -ref 0x1a2b run.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/bits"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// jsonlLine probes a line's shape: span and alert envelopes carry their
// distinguishing key, snapshot lines carry neither and re-decode as a full
// DomainSnapshot.
type jsonlLine struct {
	Scheme  string          `json:"scheme"`
	Span    json.RawMessage `json:"span"`
	Alert   json.RawMessage `json:"alert"`
	Control json.RawMessage `json:"control"`
}

// schemeData accumulates everything the file recorded for one scheme.
type schemeData struct {
	name  string
	spans []*obs.RefSpan
	last    *obs.DomainSnapshot // final snapshot: the end state
	peak    *obs.DomainSnapshot // snapshot with the largest pinned table: the worst moment of the run
	snaps   int
	actions []obs.ControlAction // controller actuations, in file order
}

func main() {
	var (
		schemeFilter = flag.String("scheme", "", "restrict the report to this scheme label")
		spansN       = flag.Int("spans", 0, "print full event timelines for the N longest-lived spans per scheme")
		refFilter    = flag.String("ref", "", "print every span recorded for this ref (decimal or 0x hex)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: heanalyze [-scheme S] [-spans N] [-ref R] file.jsonl")
		os.Exit(2)
	}

	var wantRef uint64
	if *refFilter != "" {
		v, err := strconv.ParseUint(strings.TrimPrefix(*refFilter, "0x"), parseBase(*refFilter), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -ref %q: %v\n", *refFilter, err)
			os.Exit(2)
		}
		wantRef = v
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	schemes := map[string]*schemeData{}
	order := []string{}
	var alerts []obs.Alert
	bad := 0

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe jsonlLine
		if err := json.Unmarshal(raw, &probe); err != nil {
			bad++
			continue
		}
		switch {
		// Actuation envelopes are {"control": {...}} with no top-level
		// scheme key; snapshot lines also carry a "control" member (the
		// live ControlStatus) but always name their scheme at top level.
		case probe.Control != nil && probe.Scheme == "":
			var a obs.ControlAction
			if json.Unmarshal(probe.Control, &a) != nil {
				bad++
				continue
			}
			if *schemeFilter != "" && a.Scheme != *schemeFilter {
				continue
			}
			sd := getScheme(schemes, &order, a.Scheme)
			sd.actions = append(sd.actions, a)
		case probe.Alert != nil:
			var a obs.Alert
			if json.Unmarshal(probe.Alert, &a) == nil {
				alerts = append(alerts, a)
			} else {
				bad++
			}
		case probe.Span != nil:
			if *schemeFilter != "" && probe.Scheme != *schemeFilter {
				continue
			}
			var sp obs.RefSpan
			if json.Unmarshal(probe.Span, &sp) != nil {
				bad++
				continue
			}
			sd := getScheme(schemes, &order, probe.Scheme)
			sd.spans = append(sd.spans, &sp)
		case probe.Scheme != "":
			if *schemeFilter != "" && probe.Scheme != *schemeFilter {
				continue
			}
			var snap obs.DomainSnapshot
			if json.Unmarshal(raw, &snap) != nil {
				bad++
				continue
			}
			sd := getScheme(schemes, &order, probe.Scheme)
			sd.last = &snap
			if sd.peak == nil || len(snap.Pinned) > len(sd.peak.Pinned) ||
				(len(snap.Pinned) > 0 && len(snap.Pinned) == len(sd.peak.Pinned) &&
					snap.Pinned[0].AgeNs > sd.peak.Pinned[0].AgeNs) {
				sd.peak = &snap
			}
			sd.snaps++
		default:
			bad++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "read: %v\n", err)
		os.Exit(1)
	}

	if *refFilter != "" {
		printRef(schemes, order, wantRef)
		return
	}

	for _, name := range order {
		sd := schemes[name]
		printScheme(sd, *spansN)
	}
	printAlerts(alerts, *schemeFilter)
	if bad > 0 {
		fmt.Printf("\n%d malformed line(s) skipped\n", bad)
	}
}

func parseBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func getScheme(m map[string]*schemeData, order *[]string, name string) *schemeData {
	if sd, ok := m[name]; ok {
		return sd
	}
	sd := &schemeData{name: name}
	m[name] = sd
	*order = append(*order, name)
	return sd
}

// printScheme emits the per-scheme report: span counts, recomputed
// reclamation-age distribution, the final snapshot's pin attribution, and
// optionally the longest span timelines.
func printScheme(sd *schemeData, spansN int) {
	fmt.Printf("== %s ==\n", sd.name)
	fmt.Printf("snapshots: %d   completed spans: %d\n", sd.snaps, len(sd.spans))

	// Reclamation age (retire→free), recomputed from the spans — the
	// runtime Equation-1 measurement, offline.
	var ages []int64
	for _, sp := range sd.spans {
		if sp.RetireT > 0 && sp.FreeT > 0 {
			ages = append(ages, sp.FreeT-sp.RetireT)
		}
	}
	if len(ages) > 0 {
		sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
		fmt.Printf("reclamation age (retire→free, %d spans): p50=%s p90=%s p99=%s max=%s\n",
			len(ages), ns(quantile(ages, 0.50)), ns(quantile(ages, 0.90)),
			ns(quantile(ages, 0.99)), ns(ages[len(ages)-1]))
		printAgeHistogram(ages)
	}

	if s := sd.last; s != nil {
		if s.Dropped > 0 {
			fmt.Printf("dropped observability events: %d\n", s.Dropped)
		}
		if s.BudgetBytes > 0 {
			fmt.Printf("pending bytes at end: %d (budget %d)\n", s.PendingBytes, s.BudgetBytes)
		}
		if c := s.Control; c != nil {
			gated := ""
			if c.Gated {
				gated = "  GATED"
			}
			fmt.Printf("controller at end: threshold=%d workers=%d watermark=%d headroom=%d%s\n",
				c.ScanThreshold, c.Workers, c.WatermarkBytes, c.HeadroomBytes, gated)
		}
	}
	printActions(sd.actions)
	// Pin attribution from the worst moment of the run — the snapshot with
	// the largest pinned table. During a stalled-reader episode that is the
	// stall itself, even if everything was reclaimed by the final snapshot.
	if p := sd.peak; p != nil && len(p.Pinned) > 0 {
		printPinned(p, fmt.Sprintf("peak, t=%dms", p.TMillis))
		if sd.last != nil && sd.last != p && len(sd.last.Pinned) > 0 {
			printPinned(sd.last, "still pinned at end")
		}
	}

	if spansN > 0 && len(sd.spans) > 0 {
		spans := append([]*obs.RefSpan(nil), sd.spans...)
		sort.Slice(spans, func(i, j int) bool {
			return spans[i].FreeT-spans[i].AllocT > spans[j].FreeT-spans[j].AllocT
		})
		if len(spans) > spansN {
			spans = spans[:spansN]
		}
		fmt.Printf("longest-lived spans:\n")
		for _, sp := range spans {
			printTimeline(sp)
		}
	}
	fmt.Println()
}

// printPinned renders one snapshot's longest-pinned table with its
// per-session holder attribution, then aggregates it into a per-session pin
// report (how many pinned refs each session is responsible for).
func printPinned(s *obs.DomainSnapshot, label string) {
	if len(s.Pinned) == 0 {
		return
	}
	fmt.Printf("pinned refs (%s, top %d by retire-age):\n", label, len(s.Pinned))
	type pinAgg struct {
		count  int
		maxAge int64
		era    uint64
	}
	bySession := map[int]*pinAgg{}
	for _, p := range s.Pinned {
		holders := "none (awaiting scan)"
		if len(p.Holders) > 0 {
			var parts []string
			for _, h := range p.Holders {
				parts = append(parts, fmt.Sprintf("session %d @ era %d", h.Session, h.Era))
				agg := bySession[h.Session]
				if agg == nil {
					agg = &pinAgg{}
					bySession[h.Session] = agg
				}
				agg.count++
				agg.era = h.Era
				if p.AgeNs > agg.maxAge {
					agg.maxAge = p.AgeNs
				}
			}
			holders = strings.Join(parts, ", ")
		}
		if p.BirthEra != 0 || p.RetireEra != 0 {
			fmt.Printf("  ref %#x  age %s  eras [%d,%d]  held by: %s\n",
				p.Ref, ns(p.AgeNs), p.BirthEra, p.RetireEra, holders)
		} else {
			fmt.Printf("  ref %#x  age %s  held by: %s\n", p.Ref, ns(p.AgeNs), holders)
		}
	}
	if len(bySession) > 0 {
		var ids []int
		for id := range bySession {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Printf("per-session pin report:\n")
		for _, id := range ids {
			agg := bySession[id]
			stalled := ""
			for _, se := range s.Sessions {
				if se.Session == id && se.Stalled {
					stalled = "  STALLED"
				}
			}
			fmt.Printf("  session %d: pins %d of %d listed refs, era %d, oldest %s%s\n",
				id, agg.count, len(s.Pinned), agg.era, ns(agg.maxAge), stalled)
		}
	}
}

// printTimeline renders one span's full event list, timestamps relative to
// the allocation.
func printTimeline(sp *obs.RefSpan) {
	life := "open"
	if sp.FreeT > 0 {
		life = ns(sp.FreeT - sp.AllocT)
	}
	eras := ""
	if sp.BirthEra != 0 || sp.RetireEra != 0 {
		eras = fmt.Sprintf("  eras [%d,%d]", sp.BirthEra, sp.RetireEra)
	}
	fmt.Printf("  ref %#x  lifetime %s%s\n", sp.Ref, life, eras)
	for _, ev := range sp.Events {
		val := ""
		if ev.Value != 0 {
			val = fmt.Sprintf("  value=%d", ev.Value)
		}
		sess := "-"
		if ev.Session >= 0 {
			sess = strconv.Itoa(ev.Session)
		}
		fmt.Printf("    +%-10s %-8s session=%s%s\n", ns(ev.T-sp.AllocT), ev.KindStr, sess, val)
	}
	if sp.Truncated > 0 {
		fmt.Printf("    (%d further events truncated)\n", sp.Truncated)
	}
}

// printRef prints every span any scheme recorded for one ref.
func printRef(schemes map[string]*schemeData, order []string, ref uint64) {
	found := 0
	for _, name := range order {
		for _, sp := range schemes[name].spans {
			if sp.Ref == ref {
				fmt.Printf("== %s ==\n", name)
				printTimeline(sp)
				found++
			}
		}
	}
	if found == 0 {
		fmt.Printf("no completed span recorded for ref %#x\n", ref)
	}
}

// printActions renders one scheme's controller actuation log with a
// per-knob/per-reason tally — the offline record of what the adaptive
// control plane did and why.
func printActions(actions []obs.ControlAction) {
	if len(actions) == 0 {
		return
	}
	tally := map[string]int{}
	var keys []string
	for _, a := range actions {
		k := a.Knob + " (" + a.Reason + ")"
		if tally[k] == 0 {
			keys = append(keys, k)
		}
		tally[k]++
	}
	fmt.Printf("controller actuations: %d\n", len(actions))
	for _, k := range keys {
		fmt.Printf("  %4d× %s\n", tally[k], k)
	}
	for _, a := range actions {
		fmt.Printf("  t=%6dms  %-14s %-18s %d -> %d\n",
			a.TMillis, a.Knob, a.Reason, a.From, a.To)
	}
}

func printAlerts(alerts []obs.Alert, schemeFilter string) {
	var kept []obs.Alert
	for _, a := range alerts {
		if schemeFilter == "" || a.Scheme == schemeFilter {
			kept = append(kept, a)
		}
	}
	if len(kept) == 0 {
		return
	}
	fmt.Printf("== alerts (%d transitions) ==\n", len(kept))
	for _, a := range kept {
		fmt.Printf("  t=%6dms  %-6s %-12s %-20s value=%d threshold=%d  %s\n",
			a.TMillis, a.State, a.Scheme, a.Invariant, a.Value, a.Threshold, a.Detail)
	}
}

// printAgeHistogram renders the log2 bucket counts of the age distribution.
func printAgeHistogram(sorted []int64) {
	buckets := map[int]int{}
	maxB := 0
	for _, a := range sorted {
		b := 0
		if a > 0 {
			b = bits.Len64(uint64(a))
		}
		buckets[b]++
		if b > maxB {
			maxB = b
		}
	}
	for b := 0; b <= maxB; b++ {
		n := buckets[b]
		if n == 0 {
			continue
		}
		lo := int64(0)
		if b > 0 {
			lo = int64(1) << (b - 1)
		}
		bar := strings.Repeat("#", scaleBar(n, len(sorted)))
		fmt.Printf("  %10s  %7d  %s\n", "≥"+ns(lo), n, bar)
	}
}

func scaleBar(n, total int) int {
	if total == 0 {
		return 0
	}
	w := n * 40 / total
	if w == 0 {
		w = 1
	}
	return w
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ns renders a nanosecond count with an adaptive unit.
func ns(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

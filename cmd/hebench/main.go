// Command hebench regenerates the evaluation of the Hazard Eras paper: the
// Figure-4 throughput panels, Table 1 (classification, measured per-node
// synchronization, measured memory bounds), the Equation-1 bound check, the
// Appendix-A stalled-reader contrast, and the §3.4 ablations.
//
// Usage:
//
//	hebench -exp fig4 -dur 1s -threads 1,2,4,8
//	hebench -exp table1
//	hebench -exp all -dur 500ms -csv
//	hebench -exp fig4 -grow        # undersized registries: exercise slot-block growth
//
// Experiments: fig4, table1, bound, kadvance, minmax, stalled, schemes,
// api, all. The api experiment is the public-vs-internal overhead A/B over
// the smr package; -api selects its sides (public|internal|both). The
// schemes experiment is the roster throughput comparison behind
// BENCH_schemes.json (hyaline-1r, hyaline and WFE alongside the rest).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/reclaim"
)

func main() {
	var (
		exp     = flag.String("exp", "fig4", "experiment: fig4|table1|bound|kadvance|minmax|stalled|oversub|rfactor|schemes|api|control|all")
		api     = flag.String("api", "both", "sides of the -exp api comparison: public|internal|both")
		dur     = flag.Duration("dur", 200*time.Millisecond, "measured duration per benchmark cell")
		threads = flag.String("threads", "1,2,4,8", "comma-separated worker counts")
		sizes   = flag.String("sizes", "100,1000,10000", "comma-separated list sizes (fig4)")
		updates = flag.String("updates", "0,10,100", "comma-separated update percentages (fig4)")
		seed    = flag.Uint64("seed", 42, "PRNG seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		grow    = flag.Bool("grow", false, "undersize every registry (initial capacity 2) so workers register through dynamically grown slot blocks")
		metrics = flag.String("metrics", "", "serve live metrics on this address (/metrics Prometheus text, /metrics.json, /events.json flight recorder, /debug/vars, /debug/pprof); e.g. :9090 or 127.0.0.1:0")
		sample  = flag.String("sample", "", "append per-domain observability snapshots to this file as JSON lines")
		every   = flag.Duration("sample-every", 100*time.Millisecond, "sampling interval for -sample")
		hold    = flag.Duration("hold", 0, "keep the -metrics endpoint alive this long after the experiments finish (so scrapers catch the final state)")
		offload = flag.Int("offload", 0, "background reclaimer goroutines per domain (0 = inline reclamation)")
		offWm   = flag.Int64("offload-watermark", 0, "offload backpressure watermark in pending bytes (0 = 8x the inline scan-threshold footprint)")
		valsize = flag.String("valsize", "0", "per-key []byte payload size: 0 = word values (off), N = fixed N bytes, zipf:N = skewed sizes in [8,N]")
		trace   = flag.String("trace", "", "sampled per-ref lifecycle tracing: \"all\" = every allocation, N = 1 in 2^N (adds reclamation-age and pinned-ref telemetry to /metrics.json and span lines to -sample)")
		monitor = flag.Bool("monitor", false, "run the online health monitor: invariant alerts at /alerts.json and smr_alerts_*, alert lines to -sample")
		ctrl    = flag.Bool("control", false, "attach the adaptive control plane to every domain: a feedback controller retunes the scan threshold, offload watermark and worker count live (smr_control_* metrics, control lines to -sample)")
		budget  = flag.Int64("budget", 0, "pending-bytes budget the -control controller enforces per domain (0 = derive the Equation-1 budget)")
		gate    = flag.Bool("gate", false, "with -control: engage retire-path admission backpressure while the budget is breached")
		phases  = flag.String("phases", "", "phase schedule for -exp control, e.g. churn:3s,read:3s,stall:3s (empty = churn:2s,read:2s,stall:2s)")
	)
	flag.Parse()

	if *offload > 0 {
		bench.SetOffload(reclaim.OffloadConfig{Workers: *offload, WatermarkBytes: *offWm})
	}
	if *ctrl {
		bench.SetControl(reclaim.ControlConfig{Enabled: true, BudgetBytes: *budget, Gate: *gate})
	}

	sizer, err := bench.ParseValSizer(*valsize)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bench.SetValSizer(sizer)

	if *trace != "" {
		tc, err := bench.ParseTrace(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		bench.SetObsTrace(tc)
	}

	if *metrics != "" || *sample != "" || *trace != "" || *monitor {
		hub := obs.NewHub()
		bench.SetObsHub(hub)
		// Close stops the monitor, flushes and stops the sampler, and joins
		// the metrics server — in that order, so shutdown alerts still reach
		// the sample file. Runs after the final sample and the -hold window.
		defer hub.Close()
		if *metrics != "" {
			addr, _, err := hub.Serve(*metrics)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("metrics: http://%s/metrics\n", addr)
			defer time.Sleep(*hold)
		}
		var smp *obs.Sampler
		if *sample != "" {
			var err error
			smp, err = obs.StartFileSampler(*sample, *every, hub.Domains)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sample: %v\n", err)
				os.Exit(1)
			}
			hub.SetSampler(smp)
			defer func() { smp.Sample(hub.Domains()) }()
			if *ctrl {
				bench.SetControlSink(smp.WriteAction)
			}
		}
		if *monitor {
			mon := obs.NewMonitor(obs.MonitorConfig{}, hub.Domains)
			mon.SetOnAlert(func(a obs.Alert) {
				if smp != nil {
					smp.WriteAlert(a)
				}
				for _, c := range bench.Controllers() {
					c.OnAlert(a)
				}
			})
			hub.SetMonitor(mon)
			mon.Start()
		}
	}

	o := bench.Options{
		Dur:     *dur,
		Threads: parseInts(*threads),
		Updates: parseInts(*updates),
		Sizes:   parseUints(*sizes),
		Seed:    *seed,
		CSV:     *csv,
		Grow:    *grow,
	}

	fmt.Printf("hazard-eras benchmark harness — GOMAXPROCS=%d, NumCPU=%d\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	if sizer != nil {
		fmt.Printf("byte-value mode: every key carries a -valsize=%s payload through the size-class arena\n", *valsize)
	}
	if runtime.NumCPU() < 4 {
		fmt.Println("note: few cores available; thread counts above NumCPU measure the")
		fmt.Println("oversubscribed regime (also part of the paper's evaluation).")
	}

	run := func(name string) {
		switch name {
		case "fig4":
			bench.Figure4(os.Stdout, o)
		case "table1":
			bench.Table1(os.Stdout, o)
		case "bound":
			bench.EquationOneBound(os.Stdout, o)
		case "kadvance":
			bench.KAdvance(os.Stdout, o)
		case "minmax":
			bench.MinMax(os.Stdout, o)
		case "stalled":
			bench.Stalled(os.Stdout, o)
		case "oversub":
			bench.Oversubscription(os.Stdout, o)
		case "rfactor":
			bench.RFactor(os.Stdout, o)
		case "schemes":
			bench.SchemesCompare(os.Stdout, o)
		case "api":
			bench.APICompare(os.Stdout, o, *api)
		case "control":
			bench.ControlCompare(os.Stdout, o, *phases)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "fig4", "bound", "kadvance", "rfactor", "minmax", "oversub", "stalled", "schemes", "api"} {
			run(name)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "bad integer list entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func parseUints(s string) []uint64 {
	var out []uint64
	for _, n := range parseInts(s) {
		out = append(out, uint64(n))
	}
	return out
}

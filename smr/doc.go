// Package smr is the public, typed face of the safe-memory-reclamation
// substrate: generic domains over typed arenas, pooled session guards, and
// atomic reference cells whose protected Load is only reachable through a
// live Guard — so the compiler, not the caller, enforces the
// protect-before-deref and no-use-after-release lifecycle that the paper's
// C++ API (and this repository's internal packages) enforce by convention.
//
// The three core types:
//
//   - Domain[T] — a reclamation scheme (Hazard Eras, Hazard Pointers, EBR,
//     URCU, IBR, or the §3.4 HE min/max variant) bound to a typed arena of
//     T nodes. Construct one with New (scheme enum) or NewWith (any
//     Factory, e.g. a parameterized variant).
//   - Guard — a registered session. Acquire/Release ride the domain's
//     handle pool, so steady-state acquisition allocates nothing; a
//     released Guard panics on any further session use (Alloc alone falls
//     back to the arena's safe shared path — see Domain.Alloc).
//   - Atomic[T] / AtomicBytes — typed link words. Load(g, i) is the
//     paper's get_protected: it publishes protection index i and returns a
//     Ptr[T] (or Bytes) that Domain.Deref turns into *T only while the
//     guard's operation window is open.
//
// The intended shape of an operation:
//
//	g := dom.Acquire()        // pooled session (or dom.Register())
//	g.BeginOp()               // open the operation window
//	p := cell.Load(g, 0)      // protected load (publishes era/pointer)
//	n := dom.Deref(g, p)      // typed access, checked to be in-window
//	g.EndOp()                 // drop protections
//	g.Retire(p.Ref())         // hand unlinked memory to the scheme
//	g.Release()               // park the session for reuse
//
// Guard is a concrete struct and every per-operation method is a thin,
// inlinable wrapper over the internal session handle — one predictable
// owner-only branch for the lifecycle check, no interface dispatch beyond
// what the internal path already performs, and no per-operation allocation
// (asserted by testing.AllocsPerRun in this package's tests; see also
// BENCH_api.json for the measured public-vs-internal A/B).
//
// internal/list and internal/queue are written entirely against this
// package; examples/quickstart shows the end-to-end flow.
package smr

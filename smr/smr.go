package smr

import (
	"sync"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hp"
	"repro/internal/hyaline"
	"repro/internal/ibr"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/payload"
	"repro/internal/reclaim"
	"repro/internal/urcu"
	"repro/internal/wfe"
)

// ---- substrate re-exports ------------------------------------------------
//
// These aliases are the bridge between the typed public surface and the
// internal substrate: a Ref is the same packed word internal/mem uses, a
// Backend is the same reclaim.Domain every scheme implements, and a Factory
// is assignable from the factories the bench layer and the structure
// packages already pass around. Internal packages ported to smr therefore
// interoperate with unported ones without conversion shims.

// Ref is a packed arena reference: mark bit, size class, slot generation,
// slot index. It is the untyped currency of the lifecycle calls that do not
// dereference (Publish, Retire, Free); Ptr[T] and Bytes wrap it for the
// calls that do.
type Ref = mem.Ref

// NilRef is the null Ref.
const NilRef = mem.NilRef

// InvalidRef returns a ref into a slab that is never allocated; a checked
// arena faults on any dereference of it. Poisoners store it into freed
// cells so use-after-free traversals are conspicuous.
func InvalidRef() Ref { return mem.MakeRef(mem.MaxIndex, 0) }

// Arena is the slab allocator a Domain[T] reclaims into.
type Arena[T any] = mem.Arena[T]

// ArenaOption configures the arena underlying a Domain[T].
type ArenaOption[T any] = mem.Option[T]

// ArenaStats is an allocator counter snapshot.
type ArenaStats = mem.Stats

// Checked enables generation-validated dereference (use-after-free
// detection) on the domain's arena.
func Checked[T any](on bool) ArenaOption[T] { return mem.Checked[T](on) }

// WithPoison installs a node poisoner run on every free.
func WithPoison[T any](poison func(*T)) ArenaOption[T] { return mem.WithPoison(poison) }

// WithByteValues adds the size-class byte sub-allocator to the domain's
// arena, enabling AllocBytes/PutBytes/DerefBytes payload blocks.
func WithByteValues[T any]() ArenaOption[T] { return mem.WithByteClasses[T]() }

// Backend is the scheme-level reclamation interface (the internal
// reclaim.Domain): Register/Acquire for sessions, Retire/Drain/Stats for
// accounting. Domain[T] wraps one; Backend is exposed for drivers that
// enumerate schemes generically.
type Backend = reclaim.Domain

// Allocator is the arena capability a Backend needs; every *Arena[T]
// satisfies it.
type Allocator = reclaim.Allocator

// Config carries the construction parameters common to all schemes —
// MaxThreads (initial session capacity; the registry grows on demand),
// Slots (protection indices per session), ScanR (scan amortization),
// Instrument (reader-side op counting) and Offload (background
// reclamation pipeline).
type Config = reclaim.Config

// Stats is a reclamation-accounting snapshot (PeakPending is the paper's
// Equation-1 quantity).
type Stats = reclaim.Stats

// Instrument counts reader-side atomic operations (Table 1 reproduction).
type Instrument = reclaim.Instrument

// NewInstrument allocates instrumentation counters for maxThreads ids.
func NewInstrument(maxThreads int) *Instrument { return reclaim.NewInstrument(maxThreads) }

// OffloadConfig configures the background reclamation pipeline
// (Config.Offload).
type OffloadConfig = reclaim.OffloadConfig

// ControlConfig opts a domain into the adaptive control plane
// (Config.Control): a per-domain feedback controller that retunes the scan
// threshold, offload watermark and worker count live, keeping retire
// latency flat and pending memory inside a budget as the load shifts.
type ControlConfig = reclaim.ControlConfig

// Controller is the adaptive feedback controller driving a domain's live
// knobs; obtain one from Domain.Controller.
type Controller = control.Controller

// ControlPolicy is the controller's declarative, hot-swappable rule set
// (Controller.SetPolicy). The zero value takes target-relative defaults.
type ControlPolicy = control.Policy

// Factory constructs a reclamation backend over an allocator. The factories
// in internal/bench and the Scheme.Factory method both have this shape;
// NewWith accepts either.
type Factory = func(alloc Allocator, cfg Config) Backend

// Hub aggregates observability domains for export (Prometheus text,
// JSON, flight-recorder drains); see Domain.Observe.
type Hub = obs.Hub

// NewHub creates an empty observability hub.
func NewHub() *Hub { return obs.NewHub() }

// ---- value-payload helpers ----------------------------------------------

// MinPayload is the smallest payload block a byte-value structure stores:
// a value word plus its integrity tail.
const MinPayload = payload.MinSize

// PayloadSize maps a key to its payload size under sizer (nil sizer, or
// anything below MinPayload, means MinPayload).
func PayloadSize(sizer func(key uint64) int, key uint64) int {
	return payload.SizeFor(sizer, key)
}

// EncodePayload fills a payload block from a value word (value in the head,
// deterministic integrity pattern in the tail).
func EncodePayload(p []byte, val uint64) { payload.Encode(p, val) }

// DecodePayload recovers the value word from a payload block.
func DecodePayload(p []byte) uint64 { return payload.Decode(p) }

// ---- schemes -------------------------------------------------------------

// Scheme names a reclamation algorithm for New.
type Scheme int

const (
	// HE is Hazard Eras (the paper's Algorithms 1-3).
	HE Scheme = iota
	// HEMinMax is Hazard Eras with §3.4 min/max era publication (deep
	// traversals publish at most two eras total).
	HEMinMax
	// HP is the Hazard Pointers baseline (Michael 2004).
	HP
	// EBR is the epoch-based-reclamation baseline.
	EBR
	// URCU is the Grace-Version Userspace-RCU baseline (blocking retires).
	URCU
	// IBR is 2GE interval-based reclamation, the HE follow-on.
	IBR
	// Hyaline is robust Hyaline-1R (Nikolaev & Ravindran 2019):
	// snapshot-free reclamation by per-batch reference-counted handoff,
	// with the birth-era filter that bounds memory under stalled readers.
	Hyaline
	// HyalinePlain is Hyaline without the robustness filter: every batch
	// is handed to every active session, so one stalled reader pins all
	// subsequent retirements (EBR's failure mode).
	HyalinePlain
	// WFE is Wait-Free Eras (Nikolaev & Ravindran 2020): Hazard Eras with
	// a bounded Protect retry loop backed by an announce/help protocol, so
	// readers are wait-free rather than lock-free.
	WFE
)

// String returns the display name used in stats and metrics.
func (s Scheme) String() string {
	switch s {
	case HE:
		return "HE"
	case HEMinMax:
		return "HE-minmax"
	case HP:
		return "HP"
	case EBR:
		return "EBR"
	case URCU:
		return "URCU"
	case IBR:
		return "IBR"
	case Hyaline:
		return "hyaline-1r"
	case HyalinePlain:
		return "hyaline"
	case WFE:
		return "WFE"
	}
	return "unknown"
}

// Factory returns the backend constructor for the scheme, for use with
// NewWith or any structure's DomainFactory parameter.
func (s Scheme) Factory() Factory {
	switch s {
	case HE:
		return func(a Allocator, c Config) Backend { return core.New(a, c) }
	case HEMinMax:
		return func(a Allocator, c Config) Backend { return core.New(a, c, core.WithMinMax(true)) }
	case HP:
		return func(a Allocator, c Config) Backend { return hp.New(a, c) }
	case EBR:
		return func(a Allocator, c Config) Backend { return ebr.New(a, c) }
	case URCU:
		return func(a Allocator, c Config) Backend { return urcu.New(a, c) }
	case IBR:
		return func(a Allocator, c Config) Backend { return ibr.New(a, c) }
	case Hyaline:
		return func(a Allocator, c Config) Backend { return hyaline.New(a, c) }
	case HyalinePlain:
		return func(a Allocator, c Config) Backend { return hyaline.New(a, c, hyaline.WithRobust(false)) }
	case WFE:
		return func(a Allocator, c Config) Backend { return wfe.New(a, c) }
	}
	panic("smr: unknown Scheme")
}

// ---- Domain[T] -----------------------------------------------------------

// Domain is a reclamation scheme bound to a typed arena of T nodes. All
// allocation, dereference and reclamation for one structure flows through
// one Domain; sessions come from Register/Acquire as Guards.
type Domain[T any] struct {
	dom   Backend
	arena *Arena[T]
	cfg   Config

	ctlOnce sync.Once
	ctl     *control.Controller
}

// New builds a Domain running scheme s. cfg zero values take the usual
// defaults (64 initial sessions, 4 protection slots).
func New[T any](s Scheme, cfg Config, opts ...ArenaOption[T]) *Domain[T] {
	return NewWith[T](s.Factory(), cfg, opts...)
}

// NewWith builds a Domain over the backend mk constructs — the hook for
// parameterized variants (k-advance, scan thresholds) and for the bench
// layer's instrumented factories.
func NewWith[T any](mk Factory, cfg Config, opts ...ArenaOption[T]) *Domain[T] {
	cfg = cfg.Defaulted()
	arenaOpts := append([]ArenaOption[T]{mem.WithShards[T](cfg.MaxThreads)}, opts...)
	arena := mem.NewArena[T](arenaOpts...)
	return &Domain[T]{dom: mk(arena, cfg), arena: arena, cfg: cfg}
}

// Name returns the backend's scheme name.
func (d *Domain[T]) Name() string { return d.dom.Name() }

// Backend exposes the scheme-level domain for generic drivers (stats,
// enumeration). The typed API above it is the supported surface.
func (d *Domain[T]) Backend() Backend { return d.dom }

// Arena exposes the node arena (stats, fault counters).
func (d *Domain[T]) Arena() *Arena[T] { return d.arena }

// Config returns the (defaulted) construction parameters.
func (d *Domain[T]) Config() Config { return d.cfg }

// Stats snapshots the domain's reclamation accounting.
func (d *Domain[T]) Stats() Stats { return d.dom.Stats() }

// Register opens a new session and returns its Guard. It never fails: the
// registry grows past its initial capacity on demand.
func (d *Domain[T]) Register() *Guard { return Adopt(d.dom.Register()) }

// Acquire returns a pooled session parked by an earlier Release, or
// registers a new one. The pooled path reuses both the session handle and
// its Guard, so steady-state Acquire/Release allocates nothing.
func (d *Domain[T]) Acquire() *Guard { return Adopt(d.dom.Acquire()) }

// Alloc takes a T block from the guard session's arena magazine. The block
// is private until Publish stamps its birth era and a CAS links it; an
// unpublished block is returned with Free. Allowed outside an operation
// window (structures allocate before opening one).
//
// Alloc is the one guard-routed call with no lifecycle branch: allocation
// never touches session state — the guard only contributes its arena shard
// id as a locality hint — and the branch would cost Alloc its inlinability
// (a call frame on every node insertion). A released guard carries a
// poisoned id, which the arena's shard bounds check routes to the safe
// shared allocation path; the first real session call after it (Retire,
// Atomic.Load, BeginOp) still panics with the released-guard message.
func (d *Domain[T]) Alloc(g *Guard) (Ptr[T], *T) {
	ref, p := d.arena.AllocAt(int(g.id))
	return Ptr[T]{ref}, p
}

// AllocBytes takes an n-byte payload block from the size-class space
// (WithByteValues arenas only).
func (d *Domain[T]) AllocBytes(g *Guard, n int) (Bytes, []byte) {
	if g.state == guardReleased {
		panic("smr: Domain.AllocBytes" + msgReleased)
	}
	ref, p := d.arena.AllocBytesAt(g.h.ID(), n)
	return Bytes{ref}, p
}

// PutBytes allocates a payload block holding a copy of raw.
func (d *Domain[T]) PutBytes(g *Guard, raw []byte) Bytes {
	if g.state == guardReleased {
		panic("smr: Domain.PutBytes" + msgReleased)
	}
	return Bytes{d.arena.PutBytesAt(g.h.ID(), raw)}
}

// Publish stamps r's birth era. Call it immediately before the CAS that
// makes the block reachable (paper §3: "before the object is made visible
// to other threads"); after publication the block must leave through
// Guard.Retire, never Free.
func (d *Domain[T]) Publish(r Ref) { d.dom.OnAlloc(r) }

// Deref returns the node p names. p must carry a protection that is still
// live — a Ptr obtained from Atomic.Load under g's open operation window —
// which is why the guard is part of the signature: dereference is
// unreachable once the window closed.
func (d *Domain[T]) Deref(g *Guard, p Ptr[T]) *T {
	if g.state != guardInOp {
		panic("smr: Domain.Deref" + msgNotInOp)
	}
	return d.arena.Get(p.ref)
}

// DerefBytes returns the payload block b names, under the same window
// discipline as Deref.
func (d *Domain[T]) DerefBytes(g *Guard, b Bytes) []byte {
	if g.state != guardInOp {
		panic("smr: Domain.DerefBytes" + msgNotInOp)
	}
	return d.arena.Bytes(b.ref)
}

// DerefQuiescent returns the node p names without a protection proof — for
// single-threaded phases (construction, teardown, tests) where no
// concurrent reclaimer exists. Checked arenas still validate generations.
func (d *Domain[T]) DerefQuiescent(p Ptr[T]) *T { return d.arena.Get(p.ref) }

// Free returns a never-published block to the session's magazine (the
// duplicate-insert path). Published blocks must go through Guard.Retire.
func (d *Domain[T]) Free(g *Guard, r Ref) {
	if g.state == guardReleased {
		panic("smr: Domain.Free" + msgReleased)
	}
	d.arena.FreeAt(g.h.ID(), r)
}

// Drop frees a block directly, bypassing reclamation — quiescent teardown
// only (a structure draining its own links).
func (d *Domain[T]) Drop(r Ref) { d.arena.Free(r) }

// Drain frees every pending retired object; only safe at quiescence (the
// paper's destructor).
func (d *Domain[T]) Drain() { d.dom.Drain() }

// Observe attaches an observability domain named name to hub and wires it
// to this domain's statistics, era-lag and arena sources. Call before the
// first Register/Acquire; sessions registered earlier stay uninstrumented.
func (d *Domain[T]) Observe(hub *Hub, name string) {
	oc, ok := d.dom.(interface{ EnableObs(*obs.Domain) })
	if !ok {
		return
	}
	od := obs.NewDomain(name, obs.Config{Sessions: d.cfg.MaxThreads})
	oc.EnableObs(od)
	hub.Attach(od)
	// With control enabled, bringing the controller up here — after the obs
	// domain exists — lets Attach install the control-status source and
	// budget gauge, so /metrics carries the smr_control_* series.
	if d.cfg.Control.Enabled {
		d.Controller()
	}
}

// Controller returns the domain's adaptive feedback controller, creating
// and starting it on first call; nil unless Config.Control.Enabled. When
// observability is wanted too, call Observe first — the controller then
// publishes its status and actuation events through the obs domain. The
// controller stops automatically when the domain drains.
func (d *Domain[T]) Controller() *Controller {
	if !d.cfg.Control.Enabled {
		return nil
	}
	d.ctlOnce.Do(func() {
		tn, ok := d.dom.(interface{ Tuner() *reclaim.Tuner })
		if !ok {
			return // scheme has no live knobs; Controller stays nil
		}
		ctl, _ := control.New(control.Config{
			Interval: time.Duration(d.cfg.Control.IntervalMillis) * time.Millisecond,
			Policy: control.Policy{
				BudgetBytes: d.cfg.Control.BudgetBytes,
				Gate:        d.cfg.Control.Gate,
			},
		})
		ctl.Attach(tn.Tuner())
		ctl.Start()
		d.ctl = ctl
	})
	return d.ctl
}

package smr_test

import (
	"testing"

	"repro/smr"
)

// TestDomainController pins the public control-plane surface: a domain
// constructed without Config.Control stays controller-free (nil, no
// goroutine), while an opted-in domain lazily builds one controller whose
// policy carries the configured budget and gate, retunes the live knobs,
// and stops with the domain's Drain.
func TestDomainController(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		d := smr.New[node](smr.HE, smr.Config{MaxThreads: 4, Slots: 2})
		if c := d.Controller(); c != nil {
			t.Fatalf("controller without Config.Control: %v", c)
		}
	})
	t.Run("enabled", func(t *testing.T) {
		d := smr.New[node](smr.HE, smr.Config{
			MaxThreads: 4,
			Slots:      2,
			Offload:    smr.OffloadConfig{Workers: 1, MaxWorkers: 2, WatermarkBytes: 1 << 20},
			Control:    smr.ControlConfig{Enabled: true, BudgetBytes: 1 << 20, Gate: true},
		})
		c := d.Controller()
		if c == nil {
			t.Fatal("controller missing with Config.Control.Enabled")
		}
		if c2 := d.Controller(); c2 != c {
			t.Fatal("Controller not idempotent")
		}
		p := c.Policy()
		if p.BudgetBytes != 1<<20 || !p.Gate {
			t.Fatalf("policy = %+v, want budget %d, gate on", p, 1<<20)
		}

		// A policy swap reaches the domain's knobs on the next tick; drive
		// one deterministically instead of waiting out the ticker.
		p.BudgetBytes = 2 << 20
		if err := c.SetPolicy(p); err != nil {
			t.Fatalf("SetPolicy: %v", err)
		}
		c.Step()
		st := c.Status(d.Name())
		if st == nil || st.BudgetBytes != 2<<20 {
			t.Fatalf("status after swap = %+v, want budget %d", st, 2<<20)
		}

		// Run a little traffic so Drain exercises the controller drain hook
		// with work in flight.
		g := d.Acquire()
		var cell smr.Atomic[node]
		for i := 0; i < 64; i++ {
			p, n := d.Alloc(g)
			n.key = uint64(i)
			d.Publish(p.Ref())
			old := cell.Peek()
			cell.Store(p)
			if !old.IsNil() {
				g.Retire(old.Ref())
			}
		}
		if old := cell.Peek(); !old.IsNil() {
			cell.Store(smr.Ptr[node]{})
			g.Retire(old.Ref())
		}
		g.Release()
		d.Drain()
		if s := d.Stats(); s.Pending != 0 {
			t.Fatalf("pending after drain: %+v", s)
		}
		c.Stop() // already stopped by the drain hook; must be a safe no-op
	})
}

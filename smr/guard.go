package smr

import (
	"repro/internal/reclaim"
)

// guard lifecycle states. The state word is owner-only (a Guard, like the
// session handle under it, belongs to one goroutine at a time), so the
// lifecycle checks are plain loads and stores — one predictable branch per
// operation, no atomics. A uint32, not a pointer: the checks' companion
// stores must not carry a write barrier, or BeginOp/EndOp lose their
// inlinability (and a barrier branch per operation).
const (
	guardIdle     uint32 = iota // live, outside an operation window
	guardInOp                   // inside BeginOp..EndOp
	guardReleased               // returned to the pool or unregistered
)

// Misuse panic messages. These are compile-time string constants — each
// panic site below folds "smr: <call>" + suffix at build time — because a
// call to an out-of-line message constructor would charge the inliner's
// full call cost against every wrapper and push BeginOp/EndOp/Load past
// the inlining budget. A constant panic costs the inliner almost nothing,
// which is what keeps every Guard method inlinable (the zero-overhead bar;
// see DESIGN.md "Why Guard is a concrete struct").
const (
	msgReleased = " on a released Guard " +
		"(Release returned the session to the domain pool; acquire a fresh " +
		"Guard with Domain.Acquire or Domain.Register instead of reusing this one)"
	msgNoWindow = " outside an operation window " +
		"(open one with Guard.BeginOp; protections published by Atomic.Load " +
		"are only honored between BeginOp and EndOp)"
	msgNested = " inside an already-open operation window " +
		"(windows do not nest; call EndOp before opening another)"
	// BeginOp and EndOp sit under the tightest inlining budget (they also
	// absorb the Handle call), so their checks fold both failure modes into
	// one branch and one panic; the message names both candidate causes.
	msgNotIdle = " on a Guard that is not idle: either" + msgNested +
		", or" + msgReleased
	msgNotInOp = " on a Guard with no open operation window: either" +
		msgNoWindow + ", or" + msgReleased
)

// Guard is a registered reclamation session: the capability every protected
// load, retire and dereference is routed through. Guards come from
// Domain.Register (a fresh session) or Domain.Acquire (the pooled path) and
// go back with Release (pool) or Unregister (permanent close). A Guard is
// single-owner — hand it between goroutines only with external
// synchronization, exactly like the session it wraps.
//
// Guard is deliberately a concrete struct, not an interface: every method
// below is a thin wrapper the compiler inlines into the caller, so the
// public path compiles to the internal Handle fast path plus one owner-only
// branch (see DESIGN.md "Why Guard is a concrete struct").
type Guard struct {
	h *reclaim.Handle
	// dom mirrors h.Domain(), flattened into the Guard so the hot wrappers
	// dispatch g.dom.BeginOp(g.h) directly instead of inlining
	// h.dom.BeginOp(h): the flattened form reaches the itab in one load
	// from the Guard — the same dependency depth as the internal Handle
	// path — where going through g.h first would add a pointer chase to
	// every operation.
	dom   reclaim.Domain
	state uint32
	// id caches the session's arena shard id. Release poisons it to -1:
	// Domain.Alloc is deliberately check-free (the branch would push it
	// past the inlining budget and put a call frame on the retire-heavy
	// path), and a poisoned id makes the arena's own shard bounds check
	// route a released guard's Alloc to the safe shared slow path instead
	// of a pooled session's private magazine.
	id int32
}

// Adopt wraps an internal session handle in a Guard. The Guard is parked in
// the handle's Wrapper slot, so adopting a pooled handle (Domain.Acquire
// after an earlier Release) revives the existing Guard instead of
// allocating — the zero-allocation steady state this package's
// AllocsPerRun tests pin.
//
// Adopt is the bridge for drivers that construct sessions through the
// internal reclaim API (bench harnesses, checkers); pure public-API code
// never needs it.
func Adopt(h *reclaim.Handle) *Guard {
	if g, ok := h.Wrapper.(*Guard); ok {
		g.state = guardIdle
		g.id = int32(h.ID())
		return g
	}
	g := &Guard{h: h, dom: h.Domain(), id: int32(h.ID())}
	h.Wrapper = g
	return g
}

// ID returns the session id (dense; doubles as the arena shard id).
func (g *Guard) ID() int { return g.h.ID() }

// Handle exposes the internal session handle, for structures and drivers
// that still speak the internal reclaim API. The lifecycle checks cannot
// see what happens through it; prefer the typed surface.
func (g *Guard) Handle() *reclaim.Handle { return g.h }

// BeginOp opens the operation window: protections published by Atomic.Load
// are honored from here until EndOp. Windows do not nest.
func (g *Guard) BeginOp() {
	if g.state != guardIdle {
		panic("smr: Guard.BeginOp" + msgNotIdle)
	}
	g.state = guardInOp
	g.dom.BeginOp(g.h)
}

// EndOp closes the operation window, dropping all protections. Every Ptr
// and Bytes obtained inside the window is dead after this call; retire
// what the operation unlinked, then stop touching it.
func (g *Guard) EndOp() {
	if g.state != guardInOp {
		panic("smr: Guard.EndOp" + msgNotInOp)
	}
	g.state = guardIdle
	g.dom.EndOp(g.h)
}

// Retire declares the block r names unlinked and hands it to the scheme
// for eventual reclamation. Call after the unlink CAS — outside the
// operation window when the scheme's retire may block (URCU) or scan.
func (g *Guard) Retire(r Ref) {
	if g.state == guardReleased {
		panic("smr: Guard.Retire" + msgReleased)
	}
	g.h.Retire(r)
}

// Release parks the live session in the domain pool for Acquire to reuse
// and marks this Guard released: any further use panics.
func (g *Guard) Release() {
	if g.state == guardReleased {
		panic("smr: Guard.Release" + msgReleased)
	}
	g.state = guardReleased
	g.id = -1
	g.h.Release()
}

// Unregister permanently closes the session (final scan + orphan handoff)
// and marks this Guard released: any further use panics.
func (g *Guard) Unregister() {
	if g.state == guardReleased {
		panic("smr: Guard.Unregister" + msgReleased)
	}
	g.state = guardReleased
	g.id = -1
	g.h.Unregister()
}

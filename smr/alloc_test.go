package smr_test

import (
	"testing"

	"repro/smr"
)

// The zero-overhead bar for the public API: the steady-state per-operation
// path — Acquire, BeginOp, protected Load, Deref, EndOp, Alloc, Publish,
// Retire, Release — must allocate nothing. Guard methods are concrete-struct
// wrappers the compiler inlines (no interface dispatch), pooled Acquire
// revives the Guard parked in the handle's Wrapper slot, and Atomic.Load
// compiles down to Handle.Protect. Any regression here shows up as bytes/op
// in BENCH_api.json and fails this gate first.

// allocSteadyState runs one full public-API operation cycle against a
// prefilled domain: a protected read of the shared cell, then a
// replace-and-retire churn of one node.
func allocSteadyState(d *smr.Domain[node], head *smr.Atomic[node]) {
	g := d.Acquire()
	g.BeginOp()
	p := head.Load(g, 0)
	_ = d.Deref(g, p).key
	g.EndOp()

	np, n := d.Alloc(g)
	n.key = 1
	d.Publish(np.Ref())
	old := head.Peek()
	head.Store(np)
	g.Retire(old.Ref())
	g.Release()
}

func TestAllocFreeSteadyState(t *testing.T) {
	for _, s := range []smr.Scheme{smr.HE, smr.HP} {
		t.Run(s.String(), func(t *testing.T) {
			d := smr.New[node](s, smr.Config{MaxThreads: 4, Slots: 2, ScanR: 1})
			var head smr.Atomic[node]
			g := d.Register()
			p, _ := d.Alloc(g)
			d.Publish(p.Ref())
			head.Store(p)
			g.Release()

			// Warm up: let the retire list, the arena magazines and the
			// session pool reach their steady-state capacities before
			// measuring.
			for i := 0; i < 4096; i++ {
				allocSteadyState(d, &head)
			}

			avg := testing.AllocsPerRun(1000, func() { allocSteadyState(d, &head) })
			if avg != 0 {
				t.Errorf("public API steady state allocates %.2f objects/op, want 0\n"+
					"(the Guard fast path must compile to the internal Handle path with no\n"+
					"escapes; inspect with: go build -gcflags='-m=1' ./smr 2>&1 | grep escape)",
					avg)
			}
		})
	}
}

package smr

import (
	"sync/atomic"

	"repro/internal/mem"
)

// Ptr is a typed reference to a T node. The zero value is nil. Ptr carries
// the Harris mark bit (logical-deletion flag) of the word it was loaded
// from; Unmarked strips it for dereference, WithMark sets it for the
// logical-delete CAS.
//
// A Ptr is only as alive as the protection that produced it: one obtained
// from Atomic.Load is dereferenceable (Domain.Deref) until the guard's
// EndOp; one obtained from Peek is a snapshot for validation and CAS
// expectation only.
type Ptr[T any] struct{ ref Ref }

// PtrOf wraps a raw Ref as a typed Ptr without any protection proof —
// interop with the untyped layer (poisoners, checkers). Prefer the typed
// surface.
func PtrOf[T any](r Ref) Ptr[T] { return Ptr[T]{r} }

// Ref unwraps the packed reference — the currency of Publish and Retire.
func (p Ptr[T]) Ref() Ref { return p.ref }

// IsNil reports whether p is null (ignoring the mark bit).
func (p Ptr[T]) IsNil() bool { return p.ref.Unmarked().IsNil() }

// Marked reports the Harris mark bit.
func (p Ptr[T]) Marked() bool { return p.ref.Marked() }

// Unmarked returns p with the mark bit cleared.
func (p Ptr[T]) Unmarked() Ptr[T] { return Ptr[T]{p.ref.Unmarked()} }

// WithMark returns p with the mark bit set.
func (p Ptr[T]) WithMark() Ptr[T] { return Ptr[T]{p.ref.WithMark()} }

// Atomic is a typed atomic link word holding a Ptr[T] (the paper's
// per-node next pointer, or a structure's head/tail anchor). The zero
// value holds the nil Ptr.
type Atomic[T any] struct{ v atomic.Uint64 }

// Load returns *a under protection index i of g's session — the paper's
// get_protected(tid, i, &a): the scheme publishes an era (HE/IBR) or the
// loaded pointer (HP) before returning, so the referent cannot be
// reclaimed until the guard's EndOp. Panics outside an operation window,
// because the protection would be silently worthless there.
func (a *Atomic[T]) Load(g *Guard, index int) Ptr[T] {
	if g.state != guardInOp {
		panic("smr: Atomic.Load" + msgNotInOp)
	}
	return Ptr[T]{g.h.Protect(index, &a.v)}
}

// Peek returns *a as an unprotected snapshot: valid for identity
// comparison (revalidating a traversal) and as a CAS expectation, not for
// dereference. Quiescent phases may also Peek+DerefQuiescent.
func (a *Atomic[T]) Peek() Ptr[T] { return Ptr[T]{mem.Ref(a.v.Load())} }

// Store unconditionally sets *a — initialization and quiescent resets.
func (a *Atomic[T]) Store(p Ptr[T]) { a.v.Store(uint64(p.ref)) }

// CompareAndSwap installs new if *a still holds old. This is the writers'
// linking/unlinking primitive; the mark bit participates in the
// comparison, so a concurrent logical delete fails the CAS.
func (a *Atomic[T]) CompareAndSwap(old, new Ptr[T]) bool {
	return a.v.CompareAndSwap(uint64(old.ref), uint64(new.ref))
}

// Bytes is a reference to a variable-size payload block in the arena's
// size-class space (WithByteValues). The zero value is nil.
type Bytes struct{ ref Ref }

// BytesOf wraps a raw Ref as a Bytes reference (interop; no protection
// proof).
func BytesOf(r Ref) Bytes { return Bytes{r} }

// Ref unwraps the packed reference.
func (b Bytes) Ref() Ref { return b.ref }

// IsNil reports whether b is null.
func (b Bytes) IsNil() bool { return b.ref.IsNil() }

// AtomicBytes is an atomic value cell that stores either a payload
// reference (byte-value mode — readers protect the payload through it
// before dereferencing) or an immediate value word (word mode). The two
// sets of accessors never mix on one cell.
type AtomicBytes struct{ v atomic.Uint64 }

// Load returns the payload reference under protection index i of g's
// session, with the same window discipline as Atomic.Load.
func (a *AtomicBytes) Load(g *Guard, index int) Bytes {
	if g.state != guardInOp {
		panic("smr: AtomicBytes.Load" + msgNotInOp)
	}
	return Bytes{g.h.Protect(index, &a.v)}
}

// Peek returns the payload reference as an unprotected snapshot.
func (a *AtomicBytes) Peek() Bytes { return Bytes{mem.Ref(a.v.Load())} }

// Store sets the cell to a payload reference (pre-publication init).
func (a *AtomicBytes) Store(b Bytes) { a.v.Store(uint64(b.ref)) }

// StoreWord sets the cell to an immediate value word (word mode).
func (a *AtomicBytes) StoreWord(v uint64) { a.v.Store(v) }

// LoadWord reads the immediate value word (word mode; the word is
// immutable after publication, so no protection is involved).
func (a *AtomicBytes) LoadWord() uint64 { return a.v.Load() }

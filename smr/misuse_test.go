package smr_test

import (
	"strings"
	"testing"

	"repro/smr"
)

type node struct {
	key  uint64
	next smr.Atomic[node]
}

func allSchemes() []smr.Scheme {
	return []smr.Scheme{smr.HE, smr.HEMinMax, smr.HP, smr.EBR, smr.URCU, smr.IBR}
}

func newDomain(s smr.Scheme) *smr.Domain[node] {
	return smr.New[node](s, smr.Config{MaxThreads: 4, Slots: 2})
}

// mustPanic runs fn and fails unless it panics with a message containing
// every substring in want. The substrings pin both the diagnosis ("released
// Guard") and the remedy ("Domain.Acquire") so the panics stay actionable.
func mustPanic(t *testing.T, fn func(), want ...string) {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatal("expected panic, got none")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.HasPrefix(msg, "smr: ") {
			t.Errorf("panic %q does not identify the package", msg)
		}
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Errorf("panic %q missing %q", msg, w)
			}
		}
	}()
	fn()
}

// TestMisusePanics pins the Guard lifecycle contract across every scheme:
// each class of misuse panics immediately, with a message that names the
// call, the state violated, and the fix. Run under -race in CI — the checks
// are owner-only plain loads, so the race detector proves the fast path
// stays free of cross-goroutine traffic.
func TestMisusePanics(t *testing.T) {
	for _, s := range allSchemes() {
		t.Run(s.String(), func(t *testing.T) {
			t.Run("DoubleRelease", func(t *testing.T) {
				d := newDomain(s)
				g := d.Acquire()
				g.Release()
				mustPanic(t, func() { g.Release() },
					"Guard.Release", "released Guard", "Domain.Acquire")
			})
			t.Run("RetireAfterRelease", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				p, _ := d.Alloc(g)
				d.Publish(p.Ref())
				g.Release()
				mustPanic(t, func() { g.Retire(p.Ref()) },
					"Guard.Retire", "released Guard")
			})
			t.Run("UnregisterAfterRelease", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				g.Release()
				mustPanic(t, func() { g.Unregister() },
					"Guard.Unregister", "released Guard")
			})
			t.Run("LoadOutsideWindow", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				defer g.Unregister()
				var cell smr.Atomic[node]
				mustPanic(t, func() { cell.Load(g, 0) },
					"Atomic.Load", "operation window", "Guard.BeginOp")
			})
			t.Run("LoadAfterRelease", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				g.Release()
				var cell smr.Atomic[node]
				mustPanic(t, func() { cell.Load(g, 0) },
					"Atomic.Load", "released Guard")
			})
			t.Run("LoadBytesOutsideWindow", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				defer g.Unregister()
				var cell smr.AtomicBytes
				mustPanic(t, func() { cell.Load(g, 0) },
					"AtomicBytes.Load", "operation window")
			})
			t.Run("NestedBeginOp", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				g.BeginOp()
				mustPanic(t, func() { g.BeginOp() },
					"Guard.BeginOp", "do not nest", "EndOp")
			})
			t.Run("EndOpOutsideWindow", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				defer g.Unregister()
				mustPanic(t, func() { g.EndOp() },
					"Guard.EndOp", "operation window")
			})
			t.Run("BeginOpAfterRelease", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				g.Release()
				mustPanic(t, func() { g.BeginOp() },
					"Guard.BeginOp", "released Guard")
			})
			t.Run("DerefOutsideWindow", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				defer g.Unregister()
				p, _ := d.Alloc(g)
				defer d.Free(g, p.Ref())
				mustPanic(t, func() { d.Deref(g, p) },
					"Domain.Deref", "operation window")
			})
			t.Run("AllocAfterReleaseFallsBack", func(t *testing.T) {
				// Alloc is deliberately check-free (the lifecycle branch
				// would cost it its inlinability; see Domain.Alloc): a
				// released guard carries a poisoned shard id, so the
				// arena's bounds check routes the allocation to the safe
				// shared path instead of a pooled session's magazine. The
				// first session call on the block still panics.
				d := newDomain(s)
				g := d.Register()
				g.Release()
				p, node := d.Alloc(g)
				if p.IsNil() || node == nil {
					t.Fatalf("Alloc through a released guard should fall back to the shared path, got nil")
				}
				mustPanic(t, func() { g.Retire(p.Ref()) },
					"Guard.Retire", "released Guard")
			})
			t.Run("FreeAfterRelease", func(t *testing.T) {
				d := newDomain(s)
				g := d.Register()
				p, _ := d.Alloc(g)
				g.Release()
				mustPanic(t, func() { d.Free(g, p.Ref()) },
					"Domain.Free", "released Guard")
			})
		})
	}
}

// TestGuardReuseAfterAcquire proves the flip side of the released-Guard
// panic: Acquire after Release revives the same Guard object, now valid
// again. A stale alias to the released Guard becomes usable exactly when
// the pool hands the session back out — the panic protects the gap, not
// the pointer identity.
func TestGuardReuseAfterAcquire(t *testing.T) {
	d := newDomain(smr.HE)
	g := d.Acquire()
	id := g.ID()
	g.Release()
	g2 := d.Acquire()
	if g2 != g {
		t.Fatalf("pooled Acquire allocated a new Guard (ids %d, %d)", id, g2.ID())
	}
	g2.BeginOp()
	g2.EndOp()
	g2.Unregister()
}

// TestOperationRoundTrip is the positive control: the full protected
// traversal protocol through the public surface, per scheme.
func TestOperationRoundTrip(t *testing.T) {
	for _, s := range allSchemes() {
		t.Run(s.String(), func(t *testing.T) {
			d := newDomain(s)
			g := d.Register()
			defer g.Unregister()

			p, n := d.Alloc(g)
			n.key = 42
			var head smr.Atomic[node]
			d.Publish(p.Ref())
			head.Store(p)

			g.BeginOp()
			got := head.Load(g, 0)
			if got.IsNil() || got.Ref() != p.Ref() {
				t.Fatalf("Load = %v, want %v", got.Ref(), p.Ref())
			}
			if k := d.Deref(g, got).key; k != 42 {
				t.Fatalf("Deref key = %d", k)
			}
			g.EndOp()

			head.Store(smr.PtrOf[node](smr.NilRef))
			g.Retire(p.Ref())
			d.Drain()
			if st := d.Stats(); st.Freed != 1 {
				t.Fatalf("Stats after drain: %+v", st)
			}
		})
	}
}
